// Fixed-size worker pool for data-parallel scans (the parallel
// candidate-central-node scan of Algorithm 1 is the primary customer).
// Design constraints, in order:
//
//   1. Determinism: parallel_for partitions [0, n) into contiguous chunks
//      with a fixed rule, so the work each task sees never depends on
//      scheduling.  Callers that reduce chunk results deterministically get
//      bit-identical output regardless of thread count or timing.
//   2. No oversubscription surprises: the process-wide pool is sized by
//      VCOPT_THREADS when set, else std::thread::hardware_concurrency().
//      VCOPT_THREADS=1 (or a 1-core host) degrades every parallel_for to an
//      inline serial loop — no worker threads are ever spawned.
//   3. Re-entrancy safety: parallel_for called from inside a worker runs
//      inline instead of enqueueing, so nested parallelism cannot deadlock
//      the pool on itself.
//
// Exceptions thrown by tasks are captured and the first one is rethrown on
// the caller's thread after the batch drains, so invariants (VCOPT_* checks
// abort, but plain throws propagate) keep their usual visibility.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace vcopt::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 and 1 both mean "no workers, run inline".
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 when the pool runs everything inline).
  std::size_t size() const { return workers_.size(); }

  /// Runs fn(chunk_begin, chunk_end) over a contiguous partition of [0, n)
  /// and blocks until every chunk finished.  The partition depends only on
  /// n, max_chunks and the pool size — never on timing.  `max_chunks` caps
  /// the number of chunks (0 = one per worker); chunks are balanced to
  /// within one element.  With no workers — or when called from inside a
  /// pool task — the chunks run inline on the calling thread, in order.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t max_chunks = 0);

  /// True while the calling thread is executing a task of this pool.
  bool in_worker() const;

  /// Graceful stop: rejects work submitted after this call (parallel_for
  /// then runs inline on the caller) and blocks until every already-queued
  /// and in-flight task has finished.  Workers stay alive — undrain()
  /// reopens the pool.  Idempotent.  Throws std::logic_error when called
  /// from inside a pool task (a worker waiting for its own batch to finish
  /// would deadlock).
  void drain();

  /// Reopens a drained pool for new submissions.
  void undrain();

  /// True while the pool rejects new submissions (between drain/undrain).
  bool draining() const;

  /// Process-wide pool, created on first use.  Sized by VCOPT_THREADS
  /// (clamped to [1, 256]) or hardware_concurrency() when unset/invalid.
  static ThreadPool& global();

  /// The thread count global() uses (reads VCOPT_THREADS once per call —
  /// exposed so benches and docs can report the effective setting).
  static std::size_t configured_threads();

 private:
  void worker_loop();

  mutable Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;  // signalled when queue empties / a task ends
  std::deque<std::function<void()>> queue_ VCOPT_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // written in the ctor, joined in dtor
  std::size_t active_ VCOPT_GUARDED_BY(mu_) = 0;  // tasks running on workers
  bool stop_ VCOPT_GUARDED_BY(mu_) = false;
  bool draining_ VCOPT_GUARDED_BY(mu_) = false;
};

}  // namespace vcopt::util
