// Minimal JSON value, recursive-descent parser and serializer — enough to
// load/store cloud descriptions and scenario configs (no external
// dependencies are available offline).  Supports the full JSON grammar
// except \u escapes beyond basic-multilingual-plane passthrough.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace vcopt::util {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// Thrown by Json::parse on malformed input.  Carries the byte offset of the
/// failure so loaders can convert it into a line/column diagnostic against
/// the original text (which the parser no longer has).
class JsonParseError : public std::invalid_argument {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::invalid_argument(what), offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Immutable-ish JSON value with value semantics.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), num_(n) {}
  Json(int n) : type_(Type::kNumber), num_(n) {}
  Json(long n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Json(std::size_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::kArray), arr_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::logic_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  int as_int() const;  ///< rejects non-integral numbers
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member access; throws if not an object or key missing.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  /// Object member with fallback when absent.
  double number_or(const std::string& key, double fallback) const;

  /// Array element access; throws on type mismatch / out of range.
  const Json& at(std::size_t index) const;
  std::size_t size() const;  ///< array/object element count

  /// Serialises; `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Parses a complete JSON document; throws JsonParseError (an
  /// std::invalid_argument carrying the byte offset) on malformed input.
  static Json parse(const std::string& text);

  bool operator==(const Json& o) const;

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

}  // namespace vcopt::util
