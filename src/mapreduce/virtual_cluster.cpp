#include "mapreduce/virtual_cluster.h"

#include <algorithm>
#include <stdexcept>

namespace vcopt::mapreduce {

VirtualCluster VirtualCluster::from_allocation(const cluster::Allocation& alloc) {
  VirtualCluster vc;
  vc.alloc_ = alloc;
  for (std::size_t i = 0; i < alloc.node_count(); ++i) {
    for (std::size_t j = 0; j < alloc.type_count(); ++j) {
      for (int v = 0; v < alloc.at(i, j); ++v) {
        vc.vms_.push_back(VmInstance{vc.vms_.size(), i, j});
      }
    }
  }
  return vc;
}

std::size_t VirtualCluster::add_vm(std::size_t node, std::size_t type) {
  if (node >= alloc_.node_count() || type >= alloc_.type_count()) {
    throw std::out_of_range("VirtualCluster::add_vm");
  }
  alloc_.add(node, type, 1);
  vms_.push_back(VmInstance{vms_.size(), node, type});
  return vms_.size() - 1;
}

const VmInstance& VirtualCluster::vm(std::size_t i) const {
  if (i >= vms_.size()) throw std::out_of_range("VirtualCluster::vm");
  return vms_[i];
}

std::vector<std::size_t> VirtualCluster::nodes() const {
  std::vector<std::size_t> out;
  for (const VmInstance& v : vms_) out.push_back(v.node);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double VirtualCluster::distance(const util::DoubleMatrix& dist) const {
  if (vms_.empty()) return 0;
  return alloc_.best_central(dist).distance;
}

}  // namespace vcopt::mapreduce
