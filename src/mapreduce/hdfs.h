// HDFS-style block placement over the VMs of a virtual cluster.  Each input
// split has `replication` replicas placed by the classic HDFS default
// policy: first replica on the (randomly chosen) writer VM, second on a VM
// in a *different* rack, third on a different VM in the second replica's
// rack; further replicas land on random VMs.  Replicas prefer distinct
// physical nodes.  When the cluster spans a single rack the off-rack rule
// degrades to distinct-node placement, exactly as Hadoop does.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/topology.h"
#include "mapreduce/virtual_cluster.h"
#include "util/rng.h"

namespace vcopt::mapreduce {

/// Replica locations of one block/split: indices into the virtual cluster's
/// VM list (not physical nodes).
using BlockReplicas = std::vector<std::size_t>;

class HdfsPlacement {
 public:
  /// Places `blocks` blocks with `replication` replicas each.
  HdfsPlacement(const VirtualCluster& cluster, const cluster::Topology& topology,
                std::size_t blocks, int replication, util::Rng& rng);

  std::size_t block_count() const { return replicas_.size(); }
  const BlockReplicas& replicas(std::size_t block) const;

  /// Physical nodes hosting replicas of `block` (deduplicated).
  std::vector<std::size_t> replica_nodes(std::size_t block,
                                         const VirtualCluster& cluster) const;

 private:
  std::vector<BlockReplicas> replicas_;
};

/// Picks the replica chain for one new block (exposed for unit tests).
BlockReplicas place_block(const VirtualCluster& cluster,
                          const cluster::Topology& topology, int replication,
                          util::Rng& rng);

}  // namespace vcopt::mapreduce
