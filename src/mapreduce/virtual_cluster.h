// A provisioned virtual cluster seen from the MapReduce runtime: the list of
// VM instances with the physical node each is hosted on.  Derived from an
// Allocation matrix; the bridge between the placement layer and the job
// simulator.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/allocation.h"
#include "cluster/topology.h"

namespace vcopt::mapreduce {

struct VmInstance {
  std::size_t vm = 0;    ///< dense VM index within the virtual cluster
  std::size_t node = 0;  ///< hosting physical node
  std::size_t type = 0;  ///< VM type (column of the allocation matrix)
};

class VirtualCluster {
 public:
  VirtualCluster() = default;

  /// Expands an allocation matrix into individual VM instances, ordered by
  /// (node, type) for determinism.
  static VirtualCluster from_allocation(const cluster::Allocation& alloc);

  std::size_t size() const { return vms_.size(); }
  const VmInstance& vm(std::size_t i) const;
  const std::vector<VmInstance>& vms() const { return vms_; }

  /// Appends one VM on `node` (repair: a replacement joining the cluster
  /// mid-job).  Returns the new VM's dense index.  `node` and `type` must be
  /// within the allocation the cluster was built from.
  std::size_t add_vm(std::size_t node, std::size_t type);

  /// Physical nodes hosting at least one VM (deduplicated, sorted).
  std::vector<std::size_t> nodes() const;

  /// The paper's cluster-affinity metric for this cluster (Definition 1).
  double distance(const util::DoubleMatrix& dist) const;

 private:
  std::vector<VmInstance> vms_;
  cluster::Allocation alloc_;
};

}  // namespace vcopt::mapreduce
