// Closed-loop cloud simulation (paper §VII: "the integration of ...
// virtual cluster provisioning methods and MapReduce scheduling strategies
// needs to be explored"): tenants request a virtual cluster, run a
// MapReduce job on the cluster they were GIVEN, and release it when the
// job finishes.  Placement quality therefore feeds back into capacity:
// tighter clusters finish sooner, free capacity earlier, and shrink the
// waiting of everyone behind them.
//
// Each job runs in its own MapReduceEngine (own network) — tenants contend
// for capacity, not for each other's links.  Cross-tenant network
// interference can be layered on with add_background_flow in bespoke
// set-ups; here the feedback of interest is through hold times.
#pragma once

#include <memory>
#include <vector>

#include "cluster/cloud.h"
#include "mapreduce/job.h"
#include "placement/policy.h"

namespace vcopt::mapreduce {

/// A tenant: arrival instant, the virtual cluster they want, and the job
/// they will run on it.
struct JobRequest {
  cluster::Request request;
  JobConfig job;
  double arrival_time = 0;
};

struct JobRecord {
  std::uint64_t request_id = 0;
  double arrival = 0;
  double granted = 0;
  double finished = 0;   ///< grant + simulated job runtime
  double distance = 0;   ///< DC of the granted cluster
  double job_runtime = 0;

  double wait() const { return granted - arrival; }
};

struct JobsSimResult {
  std::vector<JobRecord> jobs;
  std::uint64_t rejected = 0;
  std::uint64_t unserved = 0;
  double makespan = 0;
  double mean_wait = 0;
  double mean_runtime = 0;
  double mean_distance = 0;
  /// Jobs completed per simulated second.
  double throughput = 0;
};

/// Runs the closed loop to completion.  `seed` feeds each job's HDFS
/// placement (jobs are deterministic given seed + request id).
JobsSimResult run_jobs_sim(cluster::Cloud& cloud,
                           std::unique_ptr<placement::PlacementPolicy> policy,
                           const std::vector<JobRequest>& tenants,
                           std::uint64_t seed);

}  // namespace vcopt::mapreduce
