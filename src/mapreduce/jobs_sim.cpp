#include "mapreduce/jobs_sim.h"

#include <functional>
#include <map>
#include <stdexcept>

#include "mapreduce/engine.h"
#include "placement/provisioner.h"
#include "sim/event_queue.h"
#include "sim/network.h"

namespace vcopt::mapreduce {

JobsSimResult run_jobs_sim(cluster::Cloud& cloud,
                           std::unique_ptr<placement::PlacementPolicy> policy,
                           const std::vector<JobRequest>& tenants,
                           std::uint64_t seed) {
  placement::Provisioner prov(cloud, std::move(policy));
  sim::EventQueue queue;

  std::map<std::uint64_t, const JobRequest*> by_id;
  for (const JobRequest& t : tenants) {
    if (t.arrival_time < 0) {
      throw std::invalid_argument("run_jobs_sim: negative arrival");
    }
    if (!by_id.emplace(t.request.id(), &t).second) {
      throw std::invalid_argument("run_jobs_sim: duplicate request id");
    }
  }

  std::vector<JobRecord> jobs;
  std::map<cluster::LeaseId, std::size_t> lease_job;

  std::function<void(cluster::LeaseId)> on_release;

  auto record_grant = [&](const placement::Grant& g) {
    const JobRequest& tenant = *by_id.at(g.request_id);
    // Run the tenant's job on the cluster they actually received; the
    // simulated runtime becomes the lease's hold time.
    MapReduceEngine engine(
        cloud.topology(), sim::NetworkConfig{},
        VirtualCluster::from_allocation(g.placement.allocation),
        tenant.job, seed * 1000003ULL + g.request_id);
    const double runtime = engine.run().runtime;

    JobRecord rec;
    rec.request_id = g.request_id;
    rec.arrival = tenant.arrival_time;
    rec.granted = queue.now();
    rec.finished = queue.now() + runtime;
    rec.distance = g.placement.distance;
    rec.job_runtime = runtime;
    lease_job[g.lease] = jobs.size();
    jobs.push_back(rec);
    const cluster::LeaseId lease = g.lease;
    queue.schedule_in(runtime, [&, lease] { on_release(lease); });
  };

  on_release = [&](cluster::LeaseId lease) {
    lease_job.erase(lease);
    for (const placement::Grant& g : prov.release(lease)) record_grant(g);
  };

  for (const JobRequest& t : tenants) {
    queue.schedule(t.arrival_time, [&] {
      auto grant = prov.request(t.request);
      if (grant) record_grant(*grant);
    });
  }
  queue.run();

  JobsSimResult out;
  out.jobs = std::move(jobs);
  out.rejected = prov.rejected_count();
  out.unserved = prov.queue_length();
  out.makespan = queue.now();
  double wait = 0, runtime = 0, dist = 0;
  for (const JobRecord& j : out.jobs) {
    wait += j.wait();
    runtime += j.job_runtime;
    dist += j.distance;
  }
  if (!out.jobs.empty()) {
    const double n = static_cast<double>(out.jobs.size());
    out.mean_wait = wait / n;
    out.mean_runtime = runtime / n;
    out.mean_distance = dist / n;
    out.throughput = out.makespan > 0 ? n / out.makespan : 0;
  }
  return out;
}

}  // namespace vcopt::mapreduce
