// MapReduce job execution engine: simulates one job on a provisioned virtual
// cluster over the flow-level network.
//
// Pipeline per map task: read the split (network flow if the nearest replica
// is off-node, disk flow otherwise) -> compute -> map output lands on the
// task's node.  Each completed map triggers shuffle fetch flows to every
// reducer (Hadoop's eager copy phase).  A reducer with all segments fetched
// computes, then writes its output through a replication chain (sequential
// replica-to-replica flows approximating HDFS's write pipeline).  The job
// finishes when the last output replica is durable.
//
// Fault tolerance (Hadoop semantics, coarsened): fail_node_at(node, t)
// kills a physical node mid-job.  Its VMs stop taking tasks, running map
// copies are void, completed map outputs stored there are lost — blocks not
// yet fetched by every reducer re-execute on live VMs — and reducers on the
// node restart elsewhere, re-fetching all finished map outputs.  Stale
// events from before the failure are fenced by per-block / per-reducer
// epochs.
//
// Simplifications vs. Hadoop, none of which affect the distance/locality
// story the paper measures: all reducers start at time 0 (slowstart=0),
// per-reducer fetches run concurrently rather than through 5 copier threads
// (link sharing still throttles them), and in-flight transfers from a dead
// node are dropped logically (epoch fencing) rather than torn down in the
// flow model.
#pragma once

#include <cstdint>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "cluster/topology.h"
#include "mapreduce/hdfs.h"
#include "mapreduce/job.h"
#include "mapreduce/scheduler.h"
#include "mapreduce/virtual_cluster.h"
#include "sim/network.h"

namespace vcopt::mapreduce {

struct JobMetrics {
  double runtime = 0;        ///< job completion time (s)
  double map_phase_end = 0;  ///< last map task finish
  double shuffle_end = 0;    ///< last shuffle fetch landed

  int maps_total = 0;
  int maps_node_local = 0;
  int maps_rack_local = 0;
  int maps_remote = 0;

  double shuffle_bytes_total = 0;
  double shuffle_bytes_node_local = 0;
  double shuffle_bytes_rack_local = 0;
  double shuffle_bytes_remote = 0;  ///< crossed a rack (or cloud) boundary

  double cluster_distance = 0;  ///< DC of the cluster the job ran on
  sim::TrafficStats traffic;    ///< all bytes moved, by tier
  int locality_waits = 0;       ///< delay-scheduling holds that were taken
  int speculative_launched = 0; ///< backup map copies started
  int speculative_wins = 0;     ///< backups that beat the original copy
  int maps_reexecuted = 0;      ///< maps re-run after a node failure
  int reducers_restarted = 0;   ///< reducers relocated after a node failure
  int vms_repaired = 0;         ///< replacement VMs that joined mid-job

  /// DC of the cluster as the job ENDED: live VMs plus repair joins.  Equals
  /// cluster_distance when nothing failed; the gap between the two is the
  /// affinity cost of the failures the job absorbed.
  double final_cluster_distance = 0;

  /// Fig. 8's "non data-local map tasks" fraction.
  double non_local_map_fraction() const;
  /// Fig. 8's "non local shuffle" fraction (bytes that left their node).
  double non_local_shuffle_fraction() const;
};

class MapReduceEngine {
 public:
  /// `node_speed` (optional) gives each physical node a compute-speed
  /// multiplier (1.0 = nominal; 0.5 = half-speed straggler).  Empty means
  /// homogeneous.  Speeds scale task compute time only, not I/O.
  MapReduceEngine(const cluster::Topology& topology,
                  const sim::NetworkConfig& net_config, VirtualCluster cluster,
                  JobConfig job, std::uint64_t seed,
                  std::vector<double> node_speed = {});

  /// Registers a long-lived background transfer (another tenant's traffic)
  /// that contends with the job on the shared links.  Must be called before
  /// run(); background bytes are excluded from the reported traffic stats.
  void add_background_flow(std::size_t src, std::size_t dst, double bytes);

  /// Schedules a physical-node failure at simulated time `time` (>= 0).
  /// Must be called before run().  At least one VM must survive every
  /// failure or run() throws once the job can no longer finish.
  void fail_node_at(std::size_t node, double time);

  /// Schedules replacement VMs — `(node, type)` pairs from a repaired lease —
  /// to join the cluster at simulated time `time` (>= 0).  Must be called
  /// before run().  Joined VMs take map tasks immediately (shuffle traffic
  /// to/from them is costed against the repaired topology); a VM joining a
  /// currently-dead node idles until nothing (the engine has no node
  /// recovery), so pair joins with fail_node_at times sensibly.
  void add_vms_at(double time,
                  const std::vector<std::pair<std::size_t, std::size_t>>& vms);

  /// Runs the job to completion and returns its metrics.  One-shot.
  JobMetrics run();

  const HdfsPlacement& input_placement() const { return *placement_; }
  const VirtualCluster& virtual_cluster() const { return cluster_; }

 private:
  struct ReducerState {
    std::size_t vm = 0;
    int segments_pending = 0;
    double bytes_received = 0;
    int output_replicas_pending = 0;
    std::vector<bool> received;  ///< per block, for failure refetch/dedupe
    int epoch = 0;               ///< bumped on restart to fence stale events
    bool done = false;
  };

  void launch_maps_on(std::size_t vm);
  bool launch_speculative_on(std::size_t vm);
  void start_map(std::size_t block, std::size_t vm, bool backup);
  void finish_map(std::size_t block, std::size_t vm, bool backup);
  double node_speed(std::size_t node) const;
  bool vm_alive(std::size_t vm) const;
  void handle_failure(std::size_t node);
  void handle_join(std::size_t node, std::size_t type);
  void fetch_segment(std::size_t reducer, std::size_t block);
  std::size_t choose_live_replica(std::size_t block, std::size_t vm) const;
  void start_shuffle(std::size_t block, std::size_t map_vm);
  void segment_arrived(std::size_t reducer, std::size_t block, int block_epoch,
                       int reducer_epoch, double bytes);
  void start_reduce(std::size_t reducer);
  void write_output(std::size_t reducer);
  void reducer_done(std::size_t reducer);
  double block_bytes(std::size_t block) const;

  const cluster::Topology& topo_;
  VirtualCluster cluster_;
  JobConfig job_;
  util::Rng rng_;
  sim::EventQueue queue_;
  sim::Network net_;
  std::unique_ptr<HdfsPlacement> placement_;

  struct BackgroundFlow {
    std::size_t src;
    std::size_t dst;
    double bytes;
  };

  struct RunningMap {
    std::size_t block;
    std::size_t vm;
    double started;
    int copies = 1;
  };

  std::vector<std::size_t> pending_maps_;
  std::vector<int> free_map_slots_;   // per VM
  std::vector<double> wait_until_;    // per VM delay-scheduling deadline (<0: none)
  std::vector<BackgroundFlow> background_;
  std::vector<double> node_speed_;    // per physical node
  std::vector<bool> map_done_;        // per block: first finisher wins
  std::vector<RunningMap> running_maps_;
  std::vector<bool> node_alive_;      // per physical node
  std::vector<bool> locality_counted_;  // per block: stats counted once
  std::vector<std::size_t> output_node_;  // per block: where the output lives
  std::vector<int> block_epoch_;      // per block: bumped when output is lost
  std::vector<std::pair<std::size_t, double>> failures_;  // (node, time)
  // (time, node, type) of scheduled replacement-VM joins.
  std::vector<std::tuple<double, std::size_t, std::size_t>> joins_;
  std::vector<ReducerState> reducers_;
  int maps_running_ = 0;
  int maps_done_ = 0;
  int reducers_done_ = 0;
  bool ran_ = false;
  JobMetrics metrics_;
};

}  // namespace vcopt::mapreduce
