#include "mapreduce/scheduler.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

namespace vcopt::mapreduce {

const char* to_string(Locality l) {
  switch (l) {
    case Locality::kNodeLocal: return "node-local";
    case Locality::kRackLocal: return "rack-local";
    case Locality::kRemote: return "remote";
  }
  return "?";
}

Locality classify_locality(const HdfsPlacement& placement,
                           const VirtualCluster& cluster,
                           const cluster::Topology& topology, std::size_t block,
                           std::size_t vm) {
  const std::size_t here = cluster.vm(vm).node;
  Locality best = Locality::kRemote;
  for (std::size_t r : placement.replicas(block)) {
    const std::size_t rn = cluster.vm(r).node;
    if (rn == here) return Locality::kNodeLocal;
    if (topology.same_rack(rn, here)) best = Locality::kRackLocal;
  }
  return best;
}

std::optional<std::size_t> pick_map_task(const std::vector<std::size_t>& pending,
                                         const HdfsPlacement& placement,
                                         const VirtualCluster& cluster,
                                         const cluster::Topology& topology,
                                         std::size_t vm) {
  if (pending.empty()) return std::nullopt;
  std::size_t best_idx = 0;
  Locality best = Locality::kRemote;
  bool found = false;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const Locality l =
        classify_locality(placement, cluster, topology, pending[i], vm);
    if (!found || static_cast<int>(l) < static_cast<int>(best)) {
      found = true;
      best = l;
      best_idx = i;
      if (best == Locality::kNodeLocal) break;  // cannot improve
    }
  }
  return best_idx;
}

std::size_t choose_replica(const HdfsPlacement& placement,
                           const VirtualCluster& cluster,
                           const cluster::Topology& topology, std::size_t block,
                           std::size_t vm) {
  const std::size_t here = cluster.vm(vm).node;
  const BlockReplicas& reps = placement.replicas(block);
  if (reps.empty()) throw std::logic_error("choose_replica: block has no replicas");
  std::size_t best = reps[0];
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t r : reps) {
    const double d = topology.distance(cluster.vm(r).node, here);
    if (d < best_d) {
      best_d = d;
      best = r;
    }
  }
  return best;
}

std::vector<std::size_t> assign_reducers(const VirtualCluster& cluster,
                                         int num_reduces,
                                         int reduce_slots_per_vm,
                                         JobConfig::ReducerPlacement placement) {
  if (cluster.size() == 0) {
    throw std::invalid_argument("assign_reducers: empty cluster");
  }
  const std::size_t capacity = cluster.size() * static_cast<std::size_t>(reduce_slots_per_vm);
  if (static_cast<std::size_t>(num_reduces) > capacity) {
    throw std::invalid_argument("assign_reducers: not enough reduce slots");
  }
  // Visit order by placement strategy; ties break on VM index (stable), so
  // single-density clusters stay FIFO.
  std::map<std::size_t, int> node_density;
  for (const VmInstance& v : cluster.vms()) ++node_density[v.node];
  std::vector<std::size_t> order(cluster.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  switch (placement) {
    case JobConfig::ReducerPlacement::kDensestNode:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return node_density[cluster.vm(a).node] >
                                node_density[cluster.vm(b).node];
                       });
      break;
    case JobConfig::ReducerPlacement::kSparsestNode:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return node_density[cluster.vm(a).node] <
                                node_density[cluster.vm(b).node];
                       });
      break;
    case JobConfig::ReducerPlacement::kSpread:
      break;  // plain VM index order
  }

  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(num_reduces));
  // Breadth-first over the ordered VMs so reducers spread before doubling up.
  for (int round = 0; round < reduce_slots_per_vm; ++round) {
    for (std::size_t v : order) {
      if (out.size() == static_cast<std::size_t>(num_reduces)) return out;
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace vcopt::mapreduce
