#include "mapreduce/job.h"

#include <cmath>
#include <stdexcept>

namespace vcopt::mapreduce {

int JobConfig::num_maps() const {
  return static_cast<int>(std::ceil(input_bytes / split_bytes));
}

double JobConfig::intermediate_per_map() const {
  return split_bytes * intermediate_ratio;
}

void JobConfig::validate() const {
  if (input_bytes <= 0) throw std::invalid_argument("JobConfig: input_bytes <= 0");
  if (split_bytes <= 0) throw std::invalid_argument("JobConfig: split_bytes <= 0");
  if (num_reduces < 1) throw std::invalid_argument("JobConfig: num_reduces < 1");
  if (map_cost_per_byte < 0 || reduce_cost_per_byte < 0) {
    throw std::invalid_argument("JobConfig: negative compute cost");
  }
  if (intermediate_ratio < 0 || output_ratio < 0) {
    throw std::invalid_argument("JobConfig: negative data ratio");
  }
  if (replication < 1) throw std::invalid_argument("JobConfig: replication < 1");
  if (map_slots_per_vm < 1 || reduce_slots_per_vm < 1) {
    throw std::invalid_argument("JobConfig: slots must be >= 1");
  }
  if (locality_wait < 0) {
    throw std::invalid_argument("JobConfig: negative locality_wait");
  }
  for (int s : map_slots_per_type) {
    if (s < 1) throw std::invalid_argument("JobConfig: per-type slots must be >= 1");
  }
  if (in_network_aggregation <= 0 || in_network_aggregation > 1.0) {
    throw std::invalid_argument(
        "JobConfig: in_network_aggregation must be in (0, 1]");
  }
}

}  // namespace vcopt::mapreduce
