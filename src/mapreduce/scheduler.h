// Locality-aware map-task scheduling, Hadoop-style: when a map slot frees on
// a VM, the scheduler hands it the pending task with the best data locality
// relative to that VM — node-local first, then rack-local, then remote —
// FIFO within each class.  These are the mechanisms behind the paper's
// Fig. 8 (data-local vs non-local map tasks).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "cluster/topology.h"
#include "mapreduce/hdfs.h"
#include "mapreduce/job.h"
#include "mapreduce/virtual_cluster.h"

namespace vcopt::mapreduce {

enum class Locality { kNodeLocal = 0, kRackLocal = 1, kRemote = 2 };

const char* to_string(Locality l);

/// Best achievable locality for running `block`'s map task on `vm`.
Locality classify_locality(const HdfsPlacement& placement,
                           const VirtualCluster& cluster,
                           const cluster::Topology& topology, std::size_t block,
                           std::size_t vm);

/// Picks the index *into `pending`* of the best task for a free slot on
/// `vm`; nullopt if `pending` is empty.
std::optional<std::size_t> pick_map_task(const std::vector<std::size_t>& pending,
                                         const HdfsPlacement& placement,
                                         const VirtualCluster& cluster,
                                         const cluster::Topology& topology,
                                         std::size_t vm);

/// The replica of `block` a map task on `vm` should read: the one whose
/// hosting node is nearest to `vm`'s node (ties: lowest replica position).
std::size_t choose_replica(const HdfsPlacement& placement,
                           const VirtualCluster& cluster,
                           const cluster::Topology& topology, std::size_t block,
                           std::size_t vm);

/// Reducer-to-VM assignment.  VMs are visited in an order determined by
/// `placement` (densest node first by default — reducers aggregate the
/// whole cluster's output, so they belong where the most maps are
/// co-located), breadth-first so reducers spread across VMs before a VM
/// takes its second reducer.  Deterministic.
std::vector<std::size_t> assign_reducers(
    const VirtualCluster& cluster, int num_reduces, int reduce_slots_per_vm,
    JobConfig::ReducerPlacement placement =
        JobConfig::ReducerPlacement::kDensestNode);

}  // namespace vcopt::mapreduce
