// Application presets: the workloads the paper's evaluation and motivation
// mention.  Each preset fixes the dataflow knobs that distinguish one
// MapReduce application from another; sizes default to the paper's
// experiment scale (WordCount with 32 maps and 1 reduce) and can be rescaled.
#pragma once

#include <string>
#include <vector>

#include "mapreduce/job.h"

namespace vcopt::mapreduce {

/// WordCount (§V.B): combiner shrinks the intermediate data heavily; a
/// single reducer aggregates, tiny output.  input defaults to 32 x 64 MB so
/// the job has the paper's 32 map tasks and 1 reduce task.
JobConfig wordcount(double input_bytes = 32 * 64.0e6);

/// TeraSort: intermediate and output are both as large as the input; the
/// shuffle dominates.  Reducer count scales with input.
JobConfig terasort(double input_bytes = 32 * 64.0e6, int num_reduces = 8);

/// Grep (selective filter): near-zero intermediate data; map-dominated.
JobConfig grep(double input_bytes = 32 * 64.0e6);

/// Inverted index: intermediate comparable to input, sizeable output.
JobConfig inverted_index(double input_bytes = 32 * 64.0e6, int num_reduces = 4);

/// All presets at default scale (for sweeps over "MapReduce-like" apps).
std::vector<JobConfig> all_apps();

/// Lookup by name ("wordcount", "terasort", "grep", "inverted-index").
JobConfig app_by_name(const std::string& name);

}  // namespace vcopt::mapreduce
