// MapReduce job model.  A job is characterised by the parameters that drive
// its dataflow: input volume, split size (which fixes the number of map
// tasks), reducer count, per-byte compute costs, and the intermediate /
// output data ratios.  These are exactly the knobs through which different
// applications (WordCount, TeraSort, Grep, ...) differ in the simulation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vcopt::mapreduce {

struct JobConfig {
  std::string name = "job";

  double input_bytes = 2.0e9;       ///< total DFS input
  double split_bytes = 64.0e6;      ///< input split = one map task
  int num_reduces = 1;

  /// Seconds of compute per input byte in a map task (includes sort/spill).
  double map_cost_per_byte = 8.0e-9;
  /// Seconds of compute per shuffled byte in a reduce task (merge + reduce).
  double reduce_cost_per_byte = 6.0e-9;

  /// Map-output bytes per map-input byte (after the combiner, if any).
  double intermediate_ratio = 0.2;
  /// Reduce-output bytes per reduce-input byte.
  double output_ratio = 1.0;

  /// DFS replication factor for job output (input replicas are governed by
  /// the HDFS placement policy).
  int replication = 3;

  /// Concurrent task slots per VM (Hadoop's mapred.tasktracker.*.maximum).
  int map_slots_per_vm = 2;
  int reduce_slots_per_vm = 1;

  /// Optional per-VM-TYPE map slot counts (index = VM type).  When set,
  /// overrides map_slots_per_vm: bigger instances run more concurrent maps
  /// and therefore source proportionally more traffic — the load model
  /// behind the weighted-distance refinement (§VII).
  std::vector<int> map_slots_per_type;

  /// Delay-scheduling wait (seconds): a freed map slot whose best pending
  /// task is NOT node-local holds back this long, giving other VMs a chance
  /// to claim their node-local tasks first, then accepts whatever is left
  /// (Zaharia et al.'s delay scheduling, simplified).  0 disables.
  double locality_wait = 0;

  /// Hadoop-style speculative execution: once no map task is pending, idle
  /// map slots launch backup copies of still-running maps; the first copy
  /// to finish wins (the loser's completion is ignored).  Mitigates
  /// stragglers on heterogeneous/slow nodes.
  bool speculative_execution = false;

  /// Where reducers are hosted (the paper's Fig. 4 point: master/aggregator
  /// placement shifts the effective distance of a master-slave job).
  enum class ReducerPlacement {
    kDensestNode,  ///< VMs on the node hosting the most VMs first (default —
                   ///< the "master at the central node" rule)
    kSpread,       ///< breadth-first over VMs in index order (Hadoop's
                   ///< any-free-slot behaviour)
    kSparsestNode, ///< VMs on the least-populated node first (adversarial)
  };
  ReducerPlacement reducer_placement = ReducerPlacement::kDensestNode;

  /// Pins the FIRST reducer to a specific VM of the virtual cluster
  /// (index into the VM list; -1 = use reducer_placement).  Used to put the
  /// aggregator on the placement's central node, closing the loop with the
  /// paper's Fig. 4 master-at-central-node argument.
  int pinned_reducer_vm = -1;

  /// Camdoop-style in-network aggregation (paper §VI(3)): shuffle segments
  /// that cross a rack (or cloud) boundary are combined inside the network,
  /// shrinking to this fraction of their size.  1.0 = off (plain Hadoop);
  /// e.g. 0.25 models an aggregation tree that folds 4:1 at the switches.
  double in_network_aggregation = 1.0;

  /// Number of map tasks = ceil(input/split).
  int num_maps() const;
  /// Map-output bytes produced by one (full) split.
  double intermediate_per_map() const;

  void validate() const;
};

}  // namespace vcopt::mapreduce
