#include "mapreduce/apps.h"

#include <stdexcept>

namespace vcopt::mapreduce {

JobConfig wordcount(double input_bytes) {
  JobConfig j;
  j.name = "wordcount";
  j.input_bytes = input_bytes;
  j.split_bytes = 64.0e6;
  j.num_reduces = 1;
  j.map_cost_per_byte = 10.0e-9;    // tokenising + combining is CPU-heavy
  j.reduce_cost_per_byte = 5.0e-9;
  j.intermediate_ratio = 0.2;       // combiner collapses repeated words
  j.output_ratio = 0.1;             // distinct-word counts are small
  return j;
}

JobConfig terasort(double input_bytes, int num_reduces) {
  JobConfig j;
  j.name = "terasort";
  j.input_bytes = input_bytes;
  j.split_bytes = 64.0e6;
  j.num_reduces = num_reduces;
  j.map_cost_per_byte = 4.0e-9;     // identity map + partition
  j.reduce_cost_per_byte = 8.0e-9;  // merge-heavy reduce
  j.intermediate_ratio = 1.0;       // every byte is shuffled
  j.output_ratio = 1.0;
  return j;
}

JobConfig grep(double input_bytes) {
  JobConfig j;
  j.name = "grep";
  j.input_bytes = input_bytes;
  j.split_bytes = 64.0e6;
  j.num_reduces = 1;
  j.map_cost_per_byte = 6.0e-9;
  j.reduce_cost_per_byte = 5.0e-9;
  j.intermediate_ratio = 0.01;      // few lines match
  j.output_ratio = 1.0;
  return j;
}

JobConfig inverted_index(double input_bytes, int num_reduces) {
  JobConfig j;
  j.name = "inverted-index";
  j.input_bytes = input_bytes;
  j.split_bytes = 64.0e6;
  j.num_reduces = num_reduces;
  j.map_cost_per_byte = 12.0e-9;
  j.reduce_cost_per_byte = 10.0e-9;
  j.intermediate_ratio = 0.8;
  j.output_ratio = 0.6;
  return j;
}

std::vector<JobConfig> all_apps() {
  return {wordcount(), terasort(), grep(), inverted_index()};
}

JobConfig app_by_name(const std::string& name) {
  if (name == "wordcount") return wordcount();
  if (name == "terasort") return terasort();
  if (name == "grep") return grep();
  if (name == "inverted-index") return inverted_index();
  throw std::invalid_argument("app_by_name: unknown app '" + name + "'");
}

}  // namespace vcopt::mapreduce
