#include "mapreduce/hdfs.h"

#include <algorithm>
#include <stdexcept>

namespace vcopt::mapreduce {

namespace {

// Random choice among candidate VM indices; candidates must be non-empty.
std::size_t pick(const std::vector<std::size_t>& candidates, util::Rng& rng) {
  return candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
}

// VMs filtered by a predicate on (vm index, VmInstance).
template <typename Pred>
std::vector<std::size_t> filter_vms(const VirtualCluster& cluster, Pred pred) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (pred(cluster.vm(i))) out.push_back(i);
  }
  return out;
}

bool node_used(const BlockReplicas& chain, const VirtualCluster& cluster,
               std::size_t node) {
  for (std::size_t r : chain) {
    if (cluster.vm(r).node == node) return true;
  }
  return false;
}

}  // namespace

BlockReplicas place_block(const VirtualCluster& cluster,
                          const cluster::Topology& topology, int replication,
                          util::Rng& rng) {
  if (cluster.size() == 0) {
    throw std::invalid_argument("place_block: empty virtual cluster");
  }
  if (replication < 1) throw std::invalid_argument("place_block: replication < 1");
  const int reps = std::min<int>(replication, static_cast<int>(cluster.size()));

  BlockReplicas chain;
  // Replica 1: the writer — uniformly random VM.
  chain.push_back(static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(cluster.size()) - 1)));
  const std::size_t rack1 = topology.rack_of(cluster.vm(chain[0]).node);

  while (static_cast<int>(chain.size()) < reps) {
    std::vector<std::size_t> candidates;
    if (chain.size() == 1) {
      // Replica 2: different rack, unused node preferred.
      candidates = filter_vms(cluster, [&](const VmInstance& v) {
        return topology.rack_of(v.node) != rack1 &&
               !node_used(chain, cluster, v.node);
      });
    } else if (chain.size() == 2) {
      // Replica 3: same rack as replica 2, different (unused) node.
      const std::size_t rack2 = topology.rack_of(cluster.vm(chain[1]).node);
      candidates = filter_vms(cluster, [&](const VmInstance& v) {
        return topology.rack_of(v.node) == rack2 &&
               !node_used(chain, cluster, v.node);
      });
    }
    if (candidates.empty()) {
      // Fallbacks, in order: any unused node; any VM not already a replica.
      candidates = filter_vms(cluster, [&](const VmInstance& v) {
        return !node_used(chain, cluster, v.node);
      });
    }
    if (candidates.empty()) {
      candidates = filter_vms(cluster, [&](const VmInstance& v) {
        return std::find(chain.begin(), chain.end(), v.vm) == chain.end();
      });
    }
    if (candidates.empty()) break;  // fewer VMs than replicas
    chain.push_back(pick(candidates, rng));
  }
  return chain;
}

HdfsPlacement::HdfsPlacement(const VirtualCluster& cluster,
                             const cluster::Topology& topology,
                             std::size_t blocks, int replication,
                             util::Rng& rng) {
  replicas_.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    replicas_.push_back(place_block(cluster, topology, replication, rng));
  }
}

const BlockReplicas& HdfsPlacement::replicas(std::size_t block) const {
  if (block >= replicas_.size()) throw std::out_of_range("HdfsPlacement::replicas");
  return replicas_[block];
}

std::vector<std::size_t> HdfsPlacement::replica_nodes(
    std::size_t block, const VirtualCluster& cluster) const {
  std::vector<std::size_t> nodes;
  for (std::size_t r : replicas(block)) nodes.push_back(cluster.vm(r).node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace vcopt::mapreduce
