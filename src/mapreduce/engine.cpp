#include "mapreduce/engine.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>

#include "check/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vcopt::mapreduce {

double JobMetrics::non_local_map_fraction() const {
  if (maps_total == 0) return 0;
  return static_cast<double>(maps_rack_local + maps_remote) /
         static_cast<double>(maps_total);
}

double JobMetrics::non_local_shuffle_fraction() const {
  if (shuffle_bytes_total == 0) return 0;
  return (shuffle_bytes_total - shuffle_bytes_node_local) / shuffle_bytes_total;
}

MapReduceEngine::MapReduceEngine(const cluster::Topology& topology,
                                 const sim::NetworkConfig& net_config,
                                 VirtualCluster cluster, JobConfig job,
                                 std::uint64_t seed,
                                 std::vector<double> node_speed)
    : topo_(topology),
      cluster_(std::move(cluster)),
      job_(std::move(job)),
      rng_(seed),
      net_(topo_, net_config, queue_),
      node_speed_(std::move(node_speed)) {
  job_.validate();
  if (cluster_.size() == 0) {
    throw std::invalid_argument("MapReduceEngine: empty virtual cluster");
  }
  if (!node_speed_.empty()) {
    if (node_speed_.size() != topo_.node_count()) {
      throw std::invalid_argument("MapReduceEngine: node_speed size mismatch");
    }
    for (double s : node_speed_) {
      if (s <= 0) throw std::invalid_argument("MapReduceEngine: speed <= 0");
    }
  }
  placement_ = std::make_unique<HdfsPlacement>(
      cluster_, topo_, static_cast<std::size_t>(job_.num_maps()),
      job_.replication, rng_);

  metrics_.maps_total = job_.num_maps();
  metrics_.cluster_distance = cluster_.distance(topo_.distance_matrix());

  const auto blocks = static_cast<std::size_t>(job_.num_maps());
  pending_maps_.resize(blocks);
  for (std::size_t b = 0; b < blocks; ++b) pending_maps_[b] = b;
  free_map_slots_.assign(cluster_.size(), job_.map_slots_per_vm);
  if (!job_.map_slots_per_type.empty()) {
    for (std::size_t vm = 0; vm < cluster_.size(); ++vm) {
      const std::size_t type = cluster_.vm(vm).type;
      if (type >= job_.map_slots_per_type.size()) {
        throw std::invalid_argument(
            "MapReduceEngine: map_slots_per_type missing an entry for a VM "
            "type present in the cluster");
      }
      free_map_slots_[vm] = job_.map_slots_per_type[type];
    }
  }
  wait_until_.assign(cluster_.size(), -1.0);
  map_done_.assign(blocks, false);
  node_alive_.assign(topo_.node_count(), true);
  locality_counted_.assign(blocks, false);
  output_node_.assign(blocks, 0);
  block_epoch_.assign(blocks, 0);

  const std::vector<std::size_t> reducer_vms =
      assign_reducers(cluster_, job_.num_reduces, job_.reduce_slots_per_vm,
                      job_.reducer_placement);
  reducers_.resize(reducer_vms.size());
  for (std::size_t r = 0; r < reducer_vms.size(); ++r) {
    reducers_[r].vm = reducer_vms[r];
    reducers_[r].segments_pending = job_.num_maps();
    reducers_[r].received.assign(blocks, false);
  }
  if (job_.pinned_reducer_vm >= 0) {
    const auto pin = static_cast<std::size_t>(job_.pinned_reducer_vm);
    if (pin >= cluster_.size()) {
      throw std::invalid_argument("MapReduceEngine: pinned_reducer_vm out of range");
    }
    reducers_[0].vm = pin;
  }
}

double MapReduceEngine::block_bytes(std::size_t block) const {
  // The last split may be partial.
  const double full = job_.split_bytes;
  if (block + 1 < static_cast<std::size_t>(job_.num_maps())) return full;
  const double rest =
      job_.input_bytes - full * (static_cast<double>(job_.num_maps()) - 1);
  return rest > 0 ? rest : full;
}

double MapReduceEngine::node_speed(std::size_t node) const {
  return node_speed_.empty() ? 1.0 : node_speed_[node];
}

bool MapReduceEngine::vm_alive(std::size_t vm) const {
  return node_alive_[cluster_.vm(vm).node];
}

std::size_t MapReduceEngine::choose_live_replica(std::size_t block,
                                                 std::size_t vm) const {
  const std::size_t here = cluster_.vm(vm).node;
  const BlockReplicas& reps = placement_->replicas(block);
  std::size_t best = cluster_.size();
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t r : reps) {
    const std::size_t rn = cluster_.vm(r).node;
    if (!node_alive_[rn]) continue;
    const double d = topo_.distance(rn, here);
    if (d < best_d) {
      best_d = d;
      best = r;
    }
  }
  if (best == cluster_.size()) {
    throw std::runtime_error(
        "MapReduceEngine: all replicas of an input block were lost (failures "
        "exceeded the replication factor)");
  }
  return best;
}

bool MapReduceEngine::launch_speculative_on(std::size_t vm) {
  if (!job_.speculative_execution || !pending_maps_.empty()) return false;
  // Count copies per block and find the oldest single-copy running map that
  // is not already running on this VM.
  const RunningMap* victim = nullptr;
  for (const RunningMap& rm : running_maps_) {
    if (map_done_[rm.block] || rm.vm == vm) continue;
    int copies = 0;
    for (const RunningMap& other : running_maps_) {
      if (other.block == rm.block) ++copies;
    }
    if (copies >= 2) continue;
    if (victim == nullptr || rm.started < victim->started) victim = &rm;
  }
  if (victim == nullptr) return false;
  const std::size_t block = victim->block;
  --free_map_slots_[vm];
  ++maps_running_;
  ++metrics_.speculative_launched;
  start_map(block, vm, /*backup=*/true);
  return true;
}

void MapReduceEngine::launch_maps_on(std::size_t vm) {
  if (!vm_alive(vm)) return;
  while (free_map_slots_[vm] > 0 && pending_maps_.empty() &&
         launch_speculative_on(vm)) {
  }
  while (free_map_slots_[vm] > 0 && !pending_maps_.empty()) {
    const auto idx =
        pick_map_task(pending_maps_, *placement_, cluster_, topo_, vm);
    if (!idx) return;
    const std::size_t block = pending_maps_[*idx];

    // Delay scheduling: hold a slot whose best option is non-local, giving
    // other VMs locality_wait seconds to claim their node-local tasks.
    if (job_.locality_wait > 0 &&
        classify_locality(*placement_, cluster_, topo_, block, vm) !=
            Locality::kNodeLocal) {
      if (wait_until_[vm] < 0) {
        wait_until_[vm] = queue_.now() + job_.locality_wait;
        ++metrics_.locality_waits;
        queue_.schedule(wait_until_[vm], [this, vm] { launch_maps_on(vm); });
        return;
      }
      if (queue_.now() < wait_until_[vm]) return;  // retry event pending
      // Wait expired: accept the non-local task below.
    }
    wait_until_[vm] = -1.0;

    pending_maps_.erase(pending_maps_.begin() + static_cast<long>(*idx));
    --free_map_slots_[vm];
    ++maps_running_;
    start_map(block, vm, /*backup=*/false);
  }
}

void MapReduceEngine::start_map(std::size_t block, std::size_t vm,
                                bool backup) {
  running_maps_.push_back(RunningMap{block, vm, queue_.now()});
  // Locality accounting is by where the task *actually reads from*; backup
  // copies and post-failure re-executions do not re-count (totals stay =
  // maps_total).
  const std::size_t replica = choose_live_replica(block, vm);
  const std::size_t src = cluster_.vm(replica).node;
  const std::size_t dst = cluster_.vm(vm).node;
  if (!backup && !locality_counted_[block]) {
    locality_counted_[block] = true;
    if (src == dst) {
      ++metrics_.maps_node_local;
    } else if (topo_.same_rack(src, dst)) {
      ++metrics_.maps_rack_local;
    } else {
      ++metrics_.maps_remote;
    }
  }
  // Read the split (disk flow when local, network flow otherwise), then
  // compute (scaled by the host node's speed), then finish.
  net_.start_flow(src, dst, block_bytes(block),
                  [this, block, vm, backup](sim::FlowId) {
                    const double compute = block_bytes(block) *
                                           job_.map_cost_per_byte /
                                           node_speed(cluster_.vm(vm).node);
                    queue_.schedule_in(compute, [this, block, vm, backup] {
                      finish_map(block, vm, backup);
                    });
                  });
}

void MapReduceEngine::finish_map(std::size_t block, std::size_t vm,
                                 bool backup) {
  // A completion with no matching running entry was voided by a node
  // failure: the attempt is gone, the slot was never returned.
  bool found = false;
  for (std::size_t i = 0; i < running_maps_.size(); ++i) {
    if (running_maps_[i].block == block && running_maps_[i].vm == vm) {
      running_maps_[i] = running_maps_.back();
      running_maps_.pop_back();
      found = true;
      break;
    }
  }
  if (!found) return;

  --maps_running_;
  ++free_map_slots_[vm];
  if (map_done_[block]) {
    // A sibling copy already delivered this block's output; this one loses.
    launch_maps_on(vm);
    return;
  }
  map_done_[block] = true;
  if (backup) ++metrics_.speculative_wins;
  ++maps_done_;
  metrics_.map_phase_end = queue_.now();
  start_shuffle(block, vm);
  launch_maps_on(vm);
}

void MapReduceEngine::start_shuffle(std::size_t block, std::size_t map_vm) {
  // The map's output lives on the winning copy's node; each reducer that
  // does not already hold this block's segment fetches it from there.
  output_node_[block] = cluster_.vm(map_vm).node;
  for (std::size_t r = 0; r < reducers_.size(); ++r) {
    if (reducers_[r].done || reducers_[r].received[block]) continue;
    fetch_segment(r, block);
  }
}

void MapReduceEngine::fetch_segment(std::size_t reducer, std::size_t block) {
  double per_reducer = block_bytes(block) * job_.intermediate_ratio /
                       static_cast<double>(reducers_.size());
  const std::size_t src = output_node_[block];
  const std::size_t dst = cluster_.vm(reducers_[reducer].vm).node;
  // Camdoop-style aggregation: segments folding through the switch fabric
  // (off-rack transfers) shrink in the network.
  if (job_.in_network_aggregation < 1.0 && !topo_.same_rack(src, dst)) {
    per_reducer *= job_.in_network_aggregation;
  }
  metrics_.shuffle_bytes_total += per_reducer;
  if (src == dst) {
    metrics_.shuffle_bytes_node_local += per_reducer;
  } else if (topo_.same_rack(src, dst)) {
    metrics_.shuffle_bytes_rack_local += per_reducer;
  } else {
    metrics_.shuffle_bytes_remote += per_reducer;
  }
  const int be = block_epoch_[block];
  const int re = reducers_[reducer].epoch;
  net_.start_flow(src, dst, per_reducer,
                  [this, reducer, block, be, re, per_reducer](sim::FlowId) {
                    segment_arrived(reducer, block, be, re, per_reducer);
                  });
}

void MapReduceEngine::segment_arrived(std::size_t reducer, std::size_t block,
                                      int block_epoch, int reducer_epoch,
                                      double bytes) {
  ReducerState& st = reducers_[reducer];
  // Fences: the source output was lost, or the reducer restarted, after
  // this fetch began — the bytes are void.
  if (st.done || block_epoch != block_epoch_[block] ||
      reducer_epoch != st.epoch || st.received[block]) {
    return;
  }
  st.received[block] = true;
  st.bytes_received += bytes;
  if (--st.segments_pending == 0) {
    metrics_.shuffle_end = std::max(metrics_.shuffle_end, queue_.now());
    start_reduce(reducer);
  }
}

void MapReduceEngine::start_reduce(std::size_t reducer) {
  const int epoch = reducers_[reducer].epoch;
  const double compute =
      reducers_[reducer].bytes_received * job_.reduce_cost_per_byte /
      node_speed(cluster_.vm(reducers_[reducer].vm).node);
  queue_.schedule_in(compute, [this, reducer, epoch] {
    if (reducers_[reducer].done || reducers_[reducer].epoch != epoch) return;
    write_output(reducer);
  });
}

void MapReduceEngine::write_output(std::size_t reducer) {
  ReducerState& st = reducers_[reducer];
  const double out_bytes = st.bytes_received * job_.output_ratio;
  if (out_bytes <= 0) {
    reducer_done(reducer);
    return;
  }
  // HDFS write pipeline: the reducer's VM is the writer (first replica
  // local), subsequent replicas follow the placement policy, skipping VMs
  // on failed nodes.  The chain is modelled as sequential hops.
  BlockReplicas chain = place_block(cluster_, topo_, job_.replication, rng_);
  if (!chain.empty()) chain[0] = st.vm;
  BlockReplicas live;
  for (std::size_t r : chain) {
    if (vm_alive(r)) live.push_back(r);
  }
  chain = live;
  if (chain.empty() || chain[0] != st.vm) {
    chain.insert(chain.begin(), st.vm);
  }
  st.output_replicas_pending = static_cast<int>(chain.size());

  const int epoch = st.epoch;
  // The stored closure must not own itself (a shared_ptr cycle would leak
  // it): it captures a weak_ptr, and each in-flight flow callback carries
  // the strong reference that keeps the chain alive until the last hop.
  auto do_hop = std::make_shared<std::function<void(std::size_t)>>();
  std::weak_ptr<std::function<void(std::size_t)>> weak_hop = do_hop;
  *do_hop = [this, reducer, chain, out_bytes, weak_hop, epoch](std::size_t h) {
    auto self = weak_hop.lock();
    const std::size_t src =
        h == 0 ? cluster_.vm(chain[0]).node : cluster_.vm(chain[h - 1]).node;
    const std::size_t dst = cluster_.vm(chain[h]).node;
    net_.start_flow(src, dst, out_bytes,
                    [this, reducer, chain, self, h, epoch](sim::FlowId) {
                      ReducerState& rst = reducers_[reducer];
                      if (rst.done || rst.epoch != epoch) return;  // restarted
                      --rst.output_replicas_pending;
                      if (h + 1 < chain.size()) {
                        (*self)(h + 1);
                      } else if (rst.output_replicas_pending == 0) {
                        reducer_done(reducer);
                      }
                    });
  };
  (*do_hop)(0);
}

void MapReduceEngine::reducer_done(std::size_t reducer) {
  ReducerState& st = reducers_[reducer];
  if (st.done) return;
  st.done = true;
  if (++reducers_done_ == static_cast<int>(reducers_.size())) {
    metrics_.runtime = queue_.now();
  }
}

void MapReduceEngine::add_background_flow(std::size_t src, std::size_t dst,
                                          double bytes) {
  if (ran_) {
    throw std::logic_error("add_background_flow: job already started");
  }
  background_.push_back(BackgroundFlow{src, dst, bytes});
}

void MapReduceEngine::fail_node_at(std::size_t node, double time) {
  if (ran_) throw std::logic_error("fail_node_at: job already started");
  if (node >= topo_.node_count()) throw std::out_of_range("fail_node_at");
  if (time < 0) throw std::invalid_argument("fail_node_at: negative time");
  failures_.emplace_back(node, time);
}

void MapReduceEngine::add_vms_at(
    double time, const std::vector<std::pair<std::size_t, std::size_t>>& vms) {
  if (ran_) throw std::logic_error("add_vms_at: job already started");
  if (time < 0) throw std::invalid_argument("add_vms_at: negative time");
  for (const auto& [node, type] : vms) {
    if (node >= topo_.node_count()) throw std::out_of_range("add_vms_at");
    joins_.emplace_back(time, node, type);
  }
}

void MapReduceEngine::handle_join(std::size_t node, std::size_t type) {
  const std::size_t vm = cluster_.add_vm(node, type);
  int slots = job_.map_slots_per_vm;
  if (!job_.map_slots_per_type.empty()) {
    if (type >= job_.map_slots_per_type.size()) {
      throw std::invalid_argument(
          "MapReduceEngine: joined VM's type has no map_slots_per_type entry");
    }
    slots = job_.map_slots_per_type[type];
  }
  free_map_slots_.push_back(node_alive_[node] ? slots : 0);
  wait_until_.push_back(-1.0);
  ++metrics_.vms_repaired;
  launch_maps_on(vm);
}

void MapReduceEngine::handle_failure(std::size_t node) {
  if (!node_alive_[node]) return;
  node_alive_[node] = false;

  // Stop dead VMs from taking further work.
  for (std::size_t vm = 0; vm < cluster_.size(); ++vm) {
    if (!vm_alive(vm)) free_map_slots_[vm] = 0;
  }

  // Void running map copies on dead VMs; blocks with no surviving copy go
  // back to pending.
  std::vector<std::size_t> orphaned;
  for (std::size_t i = 0; i < running_maps_.size();) {
    if (!vm_alive(running_maps_[i].vm)) {
      orphaned.push_back(running_maps_[i].block);
      running_maps_[i] = running_maps_.back();
      running_maps_.pop_back();
      --maps_running_;
    } else {
      ++i;
    }
  }
  for (std::size_t block : orphaned) {
    if (map_done_[block]) continue;
    bool still_running = false;
    for (const RunningMap& rm : running_maps_) {
      if (rm.block == block) still_running = true;
    }
    if (!still_running &&
        std::find(pending_maps_.begin(), pending_maps_.end(), block) ==
            pending_maps_.end()) {
      pending_maps_.push_back(block);
      ++metrics_.maps_reexecuted;
    }
  }

  // Which reducers must relocate?
  std::vector<std::size_t> restarting;
  for (std::size_t r = 0; r < reducers_.size(); ++r) {
    if (!reducers_[r].done && !vm_alive(reducers_[r].vm)) restarting.push_back(r);
  }

  // Completed map outputs stored on the dead node are lost if any active
  // reducer still needs them.
  for (std::size_t b = 0; b < map_done_.size(); ++b) {
    if (!map_done_[b] || output_node_[b] != node) continue;
    bool needed = !restarting.empty();
    for (const ReducerState& st : reducers_) {
      if (!st.done && !st.received[b]) needed = true;
    }
    if (!needed) continue;
    map_done_[b] = false;
    --maps_done_;
    ++block_epoch_[b];
    pending_maps_.push_back(b);
    ++metrics_.maps_reexecuted;
    // Segments of the lost output that reducers already hold stay valid
    // (they were copied before the failure); only reducers lacking the
    // segment wait for the re-execution.
  }

  // Relocate reducers to the densest live node's VMs and refetch every
  // surviving map output.
  for (std::size_t r : restarting) {
    ReducerState& st = reducers_[r];
    ++metrics_.reducers_restarted;
    ++st.epoch;
    std::size_t best_vm = cluster_.size();
    int best_density = -1;
    for (std::size_t vm = 0; vm < cluster_.size(); ++vm) {
      if (!vm_alive(vm)) continue;
      int density = 0;
      for (const VmInstance& v : cluster_.vms()) {
        if (v.node == cluster_.vm(vm).node) ++density;
      }
      if (density > best_density) {
        best_density = density;
        best_vm = vm;
      }
    }
    if (best_vm == cluster_.size()) {
      throw std::runtime_error("MapReduceEngine: no live VM to host reducer");
    }
    st.vm = best_vm;
    st.received.assign(map_done_.size(), false);
    st.segments_pending = job_.num_maps();
    st.bytes_received = 0;
    st.output_replicas_pending = 0;
    for (std::size_t b = 0; b < map_done_.size(); ++b) {
      if (map_done_[b]) fetch_segment(r, b);
    }
  }

  // Fill freed scheduling opportunities on the survivors.
  for (std::size_t vm = 0; vm < cluster_.size(); ++vm) launch_maps_on(vm);
}

JobMetrics MapReduceEngine::run() {
  VCOPT_TRACE_SPAN("mapreduce/run");
  if (ran_) throw std::logic_error("MapReduceEngine::run: already ran");
  ran_ = true;
  for (const BackgroundFlow& bf : background_) {
    net_.start_flow(bf.src, bf.dst, bf.bytes, [](sim::FlowId) {});
  }
  for (const auto& [node, time] : failures_) {
    queue_.schedule(time, [this, node] { handle_failure(node); });
  }
  for (const auto& [time, node, type] : joins_) {
    queue_.schedule(time, [this, node, type] { handle_join(node, type); });
  }
  // Background traffic is other tenants' — exclude it from the job's stats.
  const sim::TrafficStats baseline = net_.stats();
  // Kick off the first wave of map tasks on every VM.
  for (std::size_t vm = 0; vm < cluster_.size(); ++vm) launch_maps_on(vm);
  queue_.run();
  if (reducers_done_ != static_cast<int>(reducers_.size())) {
    throw std::logic_error("MapReduceEngine: job did not complete");
  }
  // The cluster the job ENDED on: live VMs plus repair joins.  The shuffle
  // already ran against this repaired topology; this records its DC so
  // callers can compare against the pre-failure cluster_distance.
  {
    std::size_t types = 1;
    for (const VmInstance& v : cluster_.vms()) {
      types = std::max(types, v.type + 1);
    }
    cluster::Allocation live(topo_.node_count(), types);
    for (const VmInstance& v : cluster_.vms()) {
      if (node_alive_[v.node]) live.add(v.node, v.type, 1);
    }
    metrics_.final_cluster_distance =
        live.empty_allocation()
            ? 0
            : live.best_central(topo_.distance_matrix()).distance;
  }
  metrics_.traffic = net_.stats();
  metrics_.traffic.local_bytes -= baseline.local_bytes;
  metrics_.traffic.rack_bytes -= baseline.rack_bytes;
  metrics_.traffic.cross_rack_bytes -= baseline.cross_rack_bytes;
  metrics_.traffic.cross_cloud_bytes -= baseline.cross_cloud_bytes;

  // Phase-boundary invariants: maps finish before the last shuffle fetch
  // lands, shuffles land before the job completes, and the job's own traffic
  // deltas are non-negative.
  VCOPT_INVARIANT(metrics_.map_phase_end <= metrics_.shuffle_end + 1e-9 &&
                  metrics_.shuffle_end <= metrics_.runtime + 1e-9)
      << " phase timestamps out of order: map_phase_end="
      << metrics_.map_phase_end << " shuffle_end=" << metrics_.shuffle_end
      << " runtime=" << metrics_.runtime;
  VCOPT_INVARIANT(metrics_.traffic.local_bytes >= 0 &&
                  metrics_.traffic.rack_bytes >= 0 &&
                  metrics_.traffic.cross_rack_bytes >= 0 &&
                  metrics_.traffic.cross_cloud_bytes >= 0)
      << " job traffic delta went negative (baseline subtraction bug)";

  // Project the job's simulated phases into the trace on their own process
  // lane (pid 2): phases overlap (shuffle starts while maps still run), so
  // each gets its own tid row.  Timestamps are simulated seconds as µs.
  auto& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.complete("mapreduce/map_phase", 0,
                    metrics_.map_phase_end * 1e6, /*pid=*/2, /*tid=*/1);
    tracer.complete("mapreduce/shuffle_phase", 0,
                    metrics_.shuffle_end * 1e6, /*pid=*/2, /*tid=*/2);
    tracer.complete("mapreduce/reduce_phase", metrics_.shuffle_end * 1e6,
                    (metrics_.runtime - metrics_.shuffle_end) * 1e6,
                    /*pid=*/2, /*tid=*/3);
  }
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("mapreduce/jobs_run").add();
    reg.counter("mapreduce/maps_run").add(
        static_cast<std::uint64_t>(metrics_.maps_total));
    reg.counter("mapreduce/maps_reexecuted")
        .add(static_cast<std::uint64_t>(metrics_.maps_reexecuted));
    reg.counter("mapreduce/vms_repaired")
        .add(static_cast<std::uint64_t>(metrics_.vms_repaired));
    reg.gauge("mapreduce/last_runtime_seconds").set(metrics_.runtime);
  }
  return metrics_;
}

}  // namespace vcopt::mapreduce
