// Declarative linear-program model: bounded variables, linear constraints,
// minimisation objective.  Consumed by the simplex solver and the
// branch-and-bound ILP solver.  Kept deliberately dense/simple — every LP in
// this repo has at most a few hundred variables.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace vcopt::solver {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: sum(coeffs[i] * x[var_index[i]]) REL rhs.
struct Constraint {
  std::vector<std::size_t> vars;
  std::vector<double> coeffs;
  Relation relation = Relation::kEqual;
  double rhs = 0;
  std::string name;
};

/// A variable with box bounds.  `integral` marks it for branch-and-bound.
struct Variable {
  double lower = 0;
  double upper = kInfinity;
  double objective = 0;  ///< coefficient in the minimised objective
  bool integral = false;
  std::string name;
};

class LpModel {
 public:
  /// Adds a variable, returns its index.
  std::size_t add_variable(double lower, double upper, double objective,
                           bool integral = false, std::string name = {});

  /// Adds a constraint, returns its index.  All variable indices must exist.
  std::size_t add_constraint(Constraint c);

  std::size_t variable_count() const { return vars_.size(); }
  std::size_t constraint_count() const { return cons_.size(); }

  const Variable& variable(std::size_t i) const { return vars_.at(i); }
  Variable& variable(std::size_t i) { return vars_.at(i); }
  const Constraint& constraint(std::size_t i) const { return cons_.at(i); }

  const std::vector<Variable>& variables() const { return vars_; }
  const std::vector<Constraint>& constraints() const { return cons_; }

  bool has_integer_variables() const;

  /// Objective value of a candidate point.
  double objective_value(const std::vector<double>& x) const;

  /// Checks primal feasibility of a point within `tol`.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> cons_;
};

/// kFeasibleBudget marks an integer solution found before the B&B node
/// budget truncated the search: feasible, but NOT proven optimal.  Callers
/// that only accept proven optima must check for kOptimal specifically.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kFeasibleBudget
};

const char* to_string(SolveStatus s);

struct LpSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0;
  std::vector<double> x;
};

}  // namespace vcopt::solver
