#include "solver/simplex.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "check/check.h"
#include "check/validators.h"
#include "obs/metrics.h"

namespace vcopt::solver {

namespace {

// Internal standard-form problem:
//   minimize c.x  s.t.  T x = b,  x >= 0,  b >= 0
// built from the user model by shifting lower bounds to zero, turning finite
// upper bounds into rows, and adding slack/surplus/artificial columns.
struct Tableau {
  std::size_t rows = 0;
  std::size_t cols = 0;           // structural + slack + artificial
  std::size_t structural = 0;     // shifted user variables
  std::size_t artificial_begin = 0;
  std::vector<double> body;       // rows x cols
  std::vector<double> rhs;        // rows
  std::vector<std::size_t> basis; // rows -> basic column

  double& at(std::size_t r, std::size_t c) { return body[r * cols + c]; }
  double at(std::size_t r, std::size_t c) const { return body[r * cols + c]; }
};

struct Row {
  std::vector<double> coeffs;  // dense over structural variables
  Relation relation;
  double rhs;
};

void pivot(Tableau& t, std::size_t pr, std::size_t pc) {
  VCOPT_DCHECK(pr < t.rows && pc < t.cols)
      << " pivot (" << pr << "," << pc << ") outside " << t.rows << "x"
      << t.cols << " tableau";
  const double p = t.at(pr, pc);
  VCOPT_DCHECK(std::isfinite(p) && p != 0)
      << " pivot element at (" << pr << "," << pc << ") is " << p;
  for (std::size_t c = 0; c < t.cols; ++c) t.at(pr, c) /= p;
  t.rhs[pr] /= p;
  for (std::size_t r = 0; r < t.rows; ++r) {
    if (r == pr) continue;
    const double f = t.at(r, pc);
    if (f == 0) continue;
    for (std::size_t c = 0; c < t.cols; ++c) t.at(r, c) -= f * t.at(pr, c);
    t.rhs[r] -= f * t.rhs[pr];
  }
  t.basis[pr] = pc;
}

// Reduced-cost row for the cost vector `cost` (length t.cols) under the
// current basis: red[j] = cost[j] - sum_i cost[basis[i]] * body[i][j].
std::vector<double> reduced_costs(const Tableau& t, const std::vector<double>& cost) {
  std::vector<double> red = cost;
  for (std::size_t r = 0; r < t.rows; ++r) {
    const double cb = cost[t.basis[r]];
    if (cb == 0) continue;
    for (std::size_t c = 0; c < t.cols; ++c) red[c] -= cb * t.at(r, c);
  }
  return red;
}

// One simplex phase minimising `cost`.  `allowed(c)` filters entering
// columns (used to bar artificials in phase 2).  Bland's rule throughout.
SolveStatus run_phase(Tableau& t, const std::vector<double>& cost,
                      const SimplexOptions& opt, bool bar_artificials,
                      std::size_t& iterations_left, std::size_t& pivots) {
  while (true) {
    if (iterations_left-- == 0) return SolveStatus::kIterationLimit;
    const std::vector<double> red = reduced_costs(t, cost);

    // Bland: smallest-index column with negative reduced cost.
    std::size_t enter = t.cols;
    for (std::size_t c = 0; c < t.cols; ++c) {
      if (bar_artificials && c >= t.artificial_begin) break;
      if (red[c] < -opt.tolerance) {
        enter = c;
        break;
      }
    }
    if (enter == t.cols) return SolveStatus::kOptimal;

    // Ratio test; Bland tie-break on the basic variable's column index.
    std::size_t leave = t.rows;
    double best_ratio = 0;
    for (std::size_t r = 0; r < t.rows; ++r) {
      const double a = t.at(r, enter);
      if (a > opt.tolerance) {
        const double ratio = t.rhs[r] / a;
        if (leave == t.rows || ratio < best_ratio - opt.tolerance ||
            (std::abs(ratio - best_ratio) <= opt.tolerance &&
             t.basis[r] < t.basis[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
    }
    if (leave == t.rows) return SolveStatus::kUnbounded;
    ++pivots;
    pivot(t, leave, enter);
  }
}

// Tableau sanity for VCOPT_VALIDATE at phase boundaries: finite entries,
// non-negative rhs (standard form), and a consistent basis (one basic column
// per row, in range).  Compiled but never evaluated when checks are off.
check::ValidationResult tableau_sane(const Tableau& t, const char* where) {
  if (t.basis.size() != t.rows) {
    return check::invalid(std::string(where) + ": basis size " +
                          std::to_string(t.basis.size()) + " != rows " +
                          std::to_string(t.rows));
  }
  for (std::size_t r = 0; r < t.rows; ++r) {
    if (t.basis[r] >= t.cols) {
      return check::invalid(std::string(where) + ": basis[" +
                            std::to_string(r) + "] = " +
                            std::to_string(t.basis[r]) +
                            " out of range (cols = " + std::to_string(t.cols) +
                            ")");
    }
    if (!std::isfinite(t.rhs[r]) || t.rhs[r] < -1e-7) {
      return check::invalid(std::string(where) + ": rhs[" + std::to_string(r) +
                            "] = " + std::to_string(t.rhs[r]) +
                            " (standard form needs finite rhs >= 0)");
    }
    for (std::size_t c = 0; c < t.cols; ++c) {
      if (!std::isfinite(t.at(r, c))) {
        return check::invalid(std::string(where) + ": tableau(" +
                              std::to_string(r) + "," + std::to_string(c) +
                              ") = " + std::to_string(t.at(r, c)));
      }
    }
  }
  return check::valid();
}

// Local tallies are flushed once per solve so the pivot loop itself carries
// no atomic traffic.
void record_lp_metrics(std::size_t pivots) {
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  static obs::Counter& solves = reg.counter("solver/lp_solves");
  static obs::Counter& total_pivots = reg.counter("solver/simplex_pivots");
  solves.add();
  total_pivots.add(pivots);
}

}  // namespace

LpSolution solve_lp(const LpModel& model, const SimplexOptions& opt) {
  const std::size_t nvars = model.variable_count();
  LpSolution out;

  // --- Shift lower bounds to zero; reject unbounded-below variables. ---
  std::vector<double> shift(nvars);
  for (std::size_t i = 0; i < nvars; ++i) {
    const Variable& v = model.variable(i);
    if (!std::isfinite(v.lower)) {
      throw std::invalid_argument("solve_lp: variables need finite lower bounds");
    }
    shift[i] = v.lower;
  }

  // --- Collect rows: user constraints (rhs adjusted by shift) + finite
  //     upper bounds as x'_i <= ub - lo. ---
  std::vector<Row> rows;
  for (std::size_t ci = 0; ci < model.constraint_count(); ++ci) {
    const Constraint& c = model.constraint(ci);
    Row row{std::vector<double>(nvars, 0.0), c.relation, c.rhs};
    for (std::size_t t = 0; t < c.vars.size(); ++t) {
      row.coeffs[c.vars[t]] += c.coeffs[t];
      row.rhs -= c.coeffs[t] * shift[c.vars[t]];
    }
    rows.push_back(std::move(row));
  }
  for (std::size_t i = 0; i < nvars; ++i) {
    const Variable& v = model.variable(i);
    if (std::isfinite(v.upper)) {
      Row row{std::vector<double>(nvars, 0.0), Relation::kLessEqual,
              v.upper - v.lower};
      row.coeffs[i] = 1.0;
      rows.push_back(std::move(row));
    }
  }

  // Normalise to rhs >= 0.
  for (Row& r : rows) {
    if (r.rhs < 0) {
      for (double& a : r.coeffs) a = -a;
      r.rhs = -r.rhs;
      if (r.relation == Relation::kLessEqual) r.relation = Relation::kGreaterEqual;
      else if (r.relation == Relation::kGreaterEqual) r.relation = Relation::kLessEqual;
    }
  }

  // --- Count slack & artificial columns. ---
  std::size_t slacks = 0;
  std::size_t artificials = 0;
  for (const Row& r : rows) {
    if (r.relation != Relation::kEqual) ++slacks;
    if (r.relation != Relation::kLessEqual) ++artificials;
  }

  Tableau t;
  t.rows = rows.size();
  t.structural = nvars;
  t.artificial_begin = nvars + slacks;
  t.cols = nvars + slacks + artificials;
  t.body.assign(t.rows * t.cols, 0.0);
  t.rhs.resize(t.rows);
  t.basis.assign(t.rows, 0);

  std::size_t next_slack = nvars;
  std::size_t next_art = t.artificial_begin;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Row& row = rows[r];
    for (std::size_t c = 0; c < nvars; ++c) t.at(r, c) = row.coeffs[c];
    t.rhs[r] = row.rhs;
    switch (row.relation) {
      case Relation::kLessEqual:
        t.at(r, next_slack) = 1.0;
        t.basis[r] = next_slack++;
        break;
      case Relation::kGreaterEqual:
        t.at(r, next_slack) = -1.0;
        ++next_slack;
        t.at(r, next_art) = 1.0;
        t.basis[r] = next_art++;
        break;
      case Relation::kEqual:
        t.at(r, next_art) = 1.0;
        t.basis[r] = next_art++;
        break;
    }
  }

  std::size_t iterations_left = opt.max_iterations;
  std::size_t pivots = 0;
  VCOPT_VALIDATE(tableau_sane(t, "after construction"));

  // --- Phase 1: minimise the sum of artificials. ---
  if (artificials > 0) {
    std::vector<double> cost1(t.cols, 0.0);
    for (std::size_t c = t.artificial_begin; c < t.cols; ++c) cost1[c] = 1.0;
    const SolveStatus st = run_phase(t, cost1, opt, /*bar_artificials=*/false,
                                     iterations_left, pivots);
    if (st == SolveStatus::kIterationLimit) {
      out.status = st;
      record_lp_metrics(pivots);
      return out;
    }
    // Phase-1 objective = sum of artificial values.
    double art_sum = 0;
    for (std::size_t r = 0; r < t.rows; ++r) {
      if (t.basis[r] >= t.artificial_begin) art_sum += t.rhs[r];
    }
    if (art_sum > 1e-7) {
      out.status = SolveStatus::kInfeasible;
      record_lp_metrics(pivots);
      return out;
    }
    // Drive any zero-valued basic artificials out of the basis when a
    // non-artificial pivot exists; otherwise the row is redundant and the
    // artificial can stay at zero (it is barred from re-entering).
    for (std::size_t r = 0; r < t.rows; ++r) {
      if (t.basis[r] < t.artificial_begin) continue;
      for (std::size_t c = 0; c < t.artificial_begin; ++c) {
        if (std::abs(t.at(r, c)) > opt.tolerance) {
          pivot(t, r, c);
          break;
        }
      }
    }
    VCOPT_VALIDATE(tableau_sane(t, "after phase 1"));
  }

  // --- Phase 2: original objective over structural columns. ---
  std::vector<double> cost2(t.cols, 0.0);
  for (std::size_t c = 0; c < nvars; ++c) cost2[c] = model.variable(c).objective;
  const SolveStatus st =
      run_phase(t, cost2, opt, /*bar_artificials=*/true, iterations_left,
                pivots);
  record_lp_metrics(pivots);
  if (st != SolveStatus::kOptimal) {
    out.status = st;
    return out;
  }

  out.status = SolveStatus::kOptimal;
  out.x.assign(nvars, 0.0);
  for (std::size_t r = 0; r < t.rows; ++r) {
    if (t.basis[r] < nvars) out.x[t.basis[r]] = t.rhs[r];
  }
  for (std::size_t i = 0; i < nvars; ++i) out.x[i] += shift[i];
  out.objective = model.objective_value(out.x);
  VCOPT_VALIDATE(tableau_sane(t, "at optimum"));
  VCOPT_VALIDATE(check::validate_finite(out.x, "lp solution"));
  VCOPT_INVARIANT(model.is_feasible(out.x, 1e-6))
      << " simplex returned kOptimal but the point violates the model";
  return out;
}

}  // namespace vcopt::solver
