// Exact solvers for the paper's Shortest Distance (SD, Definition 2) and
// Global Shortest Distance (GSD, Definition 4) problems.
//
// Structure exploited: once the central node k is FIXED, the SD objective
// sum_i (sum_j x_ij) * D_ik prices every VM on node i at D_ik regardless of
// type, and the constraints (sum_i x_ij = R_j, 0 <= x_ij <= L_ij) are
// independent across types.  Nearest-node-first greedy filling is therefore
// optimal for fixed k (an exchange argument: moving one VM from a farther
// node to spare capacity on a nearer node strictly reduces the objective —
// exactly Theorem 1 of the paper).  Scanning all n central nodes yields the
// global optimum in O(n^2 m + n^2 log n), making the ILP unnecessary for SD;
// we keep the ILP path for cross-validation and for GSD, whose coupling
// across requests does not decompose.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "cluster/allocation.h"
#include "cluster/request.h"
#include "solver/branch_bound.h"
#include "solver/lp_model.h"
#include "util/matrix.h"

namespace vcopt::solver {

struct SdResult {
  bool feasible = false;
  cluster::Allocation allocation;
  std::size_t central = 0;
  double distance = 0;
};

/// Optimal allocation for a FIXED central node k (nearest-first fill), or
/// nullopt if L cannot satisfy R.
std::optional<cluster::Allocation> fill_for_central(
    const cluster::Request& request, const util::IntMatrix& remaining,
    const util::DoubleMatrix& dist, std::size_t central);

/// Exact SD solution by scanning all central nodes.
SdResult solve_sd_exact(const cluster::Request& request,
                        const util::IntMatrix& remaining,
                        const util::DoubleMatrix& dist);

/// Weighted-distance variant (§VII fine-grained provisioning): VM types are
/// priced by `weights[type]` (e.g. compute units as a traffic proxy).  For
/// a fixed central node, nearest-first filling remains optimal per type —
/// positive weights scale each type's cost uniformly — so the scan stays
/// exact; only the objective and hence the chosen central node change.
SdResult solve_sd_exact_weighted(const cluster::Request& request,
                                 const util::IntMatrix& remaining,
                                 const util::DoubleMatrix& dist,
                                 const std::vector<double>& weights);

/// Builds the integer program of §III.B for a fixed central node:
/// min sum_ij x_ij D_ik  s.t.  sum_i x_ij = R_j, 0 <= x_ij <= L_ij.
/// Variable order: x_ij at index i * m + j.
LpModel build_sd_model(const cluster::Request& request,
                       const util::IntMatrix& remaining,
                       const util::DoubleMatrix& dist, std::size_t central);

/// Exact SD solution via branch-and-bound over every central node.
/// Slower than solve_sd_exact; used to cross-validate it.
SdResult solve_sd_ilp(const cluster::Request& request,
                      const util::IntMatrix& remaining,
                      const util::DoubleMatrix& dist,
                      const IlpOptions& options = {});

struct GsdResult {
  bool feasible = false;
  std::vector<cluster::Allocation> allocations;
  std::vector<std::size_t> centrals;
  double total_distance = 0;
};

/// Builds the coupled integer program of Definition 4 for FIXED central
/// nodes (one per request): min sum_k sum_ij x^k_ij D(i, T_k) subject to
/// per-request demand and shared capacity sum_k x^k_ij <= L_ij.
/// Variable order: x^k_ij at index (k * n + i) * m + j.
LpModel build_gsd_model(const std::vector<cluster::Request>& requests,
                        const util::IntMatrix& remaining,
                        const util::DoubleMatrix& dist,
                        const std::vector<std::size_t>& centrals);

/// Exact GSD by enumerating all central-node tuples (n^p combinations) and
/// solving the coupled ILP for each.  Only viable for small instances; the
/// caller must keep n^p under `max_tuples` or the call throws.
GsdResult solve_gsd_exact(const std::vector<cluster::Request>& requests,
                          const util::IntMatrix& remaining,
                          const util::DoubleMatrix& dist,
                          std::size_t max_tuples = 100000,
                          const IlpOptions& options = {});

}  // namespace vcopt::solver
