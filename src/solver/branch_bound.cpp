#include "solver/branch_bound.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "check/check.h"
#include "check/validators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/simplex.h"

namespace vcopt::solver {

namespace {

struct Node {
  // Bound overrides per integer variable (index -> [lo, hi]); stored densely
  // over all variables for simplicity (models here are small).
  std::vector<double> lower;
  std::vector<double> upper;
  double bound = -std::numeric_limits<double>::infinity();

  bool operator<(const Node& o) const {
    // priority_queue is a max-heap; we want the *smallest* bound on top.
    return bound > o.bound;
  }
};

// Index of the integer variable whose value is farthest from integral,
// or SIZE_MAX if all integer variables are integral within tol.
std::size_t most_fractional(const LpModel& model, const std::vector<double>& x,
                            double tol) {
  std::size_t best = SIZE_MAX;
  double best_frac_dist = tol;
  for (std::size_t i = 0; i < model.variable_count(); ++i) {
    if (!model.variable(i).integral) continue;
    const double frac = x[i] - std::floor(x[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_frac_dist) {
      best_frac_dist = dist;
      best = i;
    }
  }
  return best;
}

// Metrics are accumulated locally during the search and published once per
// solve, keeping the node loop free of atomic traffic.
void record_solve_metrics(const IlpSolution& out, std::size_t prunes,
                          std::size_t incumbent_updates,
                          std::chrono::steady_clock::time_point t0) {
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  static obs::Counter& solves = reg.counter("solver/bb_solves");
  static obs::Counter& nodes = reg.counter("solver/bb_nodes_explored");
  static obs::Counter& pruned = reg.counter("solver/bb_prunes");
  static obs::Counter& incumbents = reg.counter("solver/bb_incumbent_updates");
  static obs::Counter& truncations = reg.counter("solver/bb_budget_truncations");
  static obs::HistogramMetric& wall = reg.histogram(
      "solver/bb_solve_seconds",
      obs::MetricsRegistry::exponential_buckets(1e-6, 4.0, 16));
  solves.add();
  nodes.add(out.nodes_explored);
  pruned.add(prunes);
  incumbents.add(incumbent_updates);
  if (out.node_limit_hit) truncations.add();
  wall.observe(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count());
}

}  // namespace

IlpSolution solve_ilp(const LpModel& model, const IlpOptions& opt) {
  VCOPT_TRACE_SPAN("solver/ilp_solve");
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t prunes = 0;
  std::size_t incumbent_updates = 0;

  IlpSolution out;
  const std::size_t n = model.variable_count();

  // Working copy whose bounds we mutate per node.
  LpModel work = model;

  Node root;
  root.lower.resize(n);
  root.upper.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    root.lower[i] = model.variable(i).lower;
    root.upper[i] = model.variable(i).upper;
  }

  double incumbent = std::numeric_limits<double>::infinity();
  std::vector<double> incumbent_x;
  bool any_lp_solved = false;

  std::priority_queue<Node> open;
  open.push(std::move(root));

  while (!open.empty()) {
    if (out.nodes_explored >= opt.max_nodes) {
      out.node_limit_hit = true;
      break;
    }
    Node node = open.top();
    open.pop();
    if (node.bound >= incumbent - opt.gap_tol &&
        std::isfinite(incumbent)) {
      ++prunes;
      continue;  // pruned by bound
    }
    ++out.nodes_explored;

    for (std::size_t i = 0; i < n; ++i) {
      work.variable(i).lower = node.lower[i];
      work.variable(i).upper = node.upper[i];
    }
    const LpSolution relax = solve_lp(work);
    if (relax.status == SolveStatus::kUnbounded) {
      // An unbounded relaxation at the root means the ILP is unbounded
      // (bounded integer models in this repo never trigger this).
      out.status = SolveStatus::kUnbounded;
      return out;
    }
    if (relax.status != SolveStatus::kOptimal) continue;  // infeasible branch
    any_lp_solved = true;
    if (relax.objective >= incumbent - opt.gap_tol) {
      ++prunes;
      continue;
    }

    const std::size_t branch_var =
        most_fractional(model, relax.x, opt.integrality_tol);
    if (branch_var == SIZE_MAX) {
      // Integral: new incumbent.  Snap integer variables exactly.
      std::vector<double> x = relax.x;
      for (std::size_t i = 0; i < n; ++i) {
        if (model.variable(i).integral) x[i] = std::round(x[i]);
      }
      const double obj = model.objective_value(x);
      if (obj < incumbent) {
        // Incumbent monotonicity: each accepted incumbent strictly improves
        // the previous one and satisfies the ORIGINAL model (the node's
        // tightened bounds only restrict further).
        VCOPT_INVARIANT(!std::isfinite(incumbent) || obj < incumbent)
            << " B&B incumbent regressed: " << incumbent << " -> " << obj;
        VCOPT_INVARIANT(model.is_feasible(x, 1e-6))
            << " B&B incumbent violates the model constraints (objective "
            << obj << ")";
        incumbent = obj;
        incumbent_x = std::move(x);
        ++incumbent_updates;
      }
      continue;
    }

    const double v = relax.x[branch_var];
    Node down = node;
    down.upper[branch_var] = std::floor(v);
    down.bound = relax.objective;
    if (down.lower[branch_var] <= down.upper[branch_var]) open.push(std::move(down));

    Node up = node;
    up.lower[branch_var] = std::ceil(v);
    up.bound = relax.objective;
    if (up.lower[branch_var] <= up.upper[branch_var]) open.push(std::move(up));
  }

  if (incumbent_x.empty()) {
    out.status = any_lp_solved && out.node_limit_hit
                     ? SolveStatus::kIterationLimit
                     : SolveStatus::kInfeasible;
    record_solve_metrics(out, prunes, incumbent_updates, t0);
    return out;
  }
  // An incumbent found under a truncated search is feasible but not proven
  // optimal — callers that require optimality must not mistake it for one.
  out.status = out.node_limit_hit ? SolveStatus::kFeasibleBudget
                                  : SolveStatus::kOptimal;
  out.objective = incumbent;
  out.x = std::move(incumbent_x);
  VCOPT_VALIDATE(check::validate_finite(out.x, "ilp solution"));
  record_solve_metrics(out, prunes, incumbent_updates, t0);
  return out;
}

}  // namespace vcopt::solver
