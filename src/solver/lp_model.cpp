#include "solver/lp_model.h"

#include <cmath>
#include <stdexcept>

namespace vcopt::solver {

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kFeasibleBudget: return "feasible-budget";
  }
  return "?";
}

std::size_t LpModel::add_variable(double lower, double upper, double objective,
                                  bool integral, std::string name) {
  if (lower > upper) throw std::invalid_argument("LpModel: lower > upper");
  vars_.push_back(Variable{lower, upper, objective, integral, std::move(name)});
  return vars_.size() - 1;
}

std::size_t LpModel::add_constraint(Constraint c) {
  if (c.vars.size() != c.coeffs.size()) {
    throw std::invalid_argument("LpModel: vars/coeffs size mismatch");
  }
  for (std::size_t v : c.vars) {
    if (v >= vars_.size()) throw std::invalid_argument("LpModel: unknown variable");
  }
  cons_.push_back(std::move(c));
  return cons_.size() - 1;
}

bool LpModel::has_integer_variables() const {
  for (const auto& v : vars_) {
    if (v.integral) return true;
  }
  return false;
}

double LpModel::objective_value(const std::vector<double>& x) const {
  if (x.size() != vars_.size()) {
    throw std::invalid_argument("LpModel::objective_value: size mismatch");
  }
  double obj = 0;
  for (std::size_t i = 0; i < vars_.size(); ++i) obj += vars_[i].objective * x[i];
  return obj;
}

bool LpModel::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != vars_.size()) return false;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (x[i] < vars_[i].lower - tol || x[i] > vars_[i].upper + tol) return false;
  }
  for (const auto& c : cons_) {
    double lhs = 0;
    for (std::size_t t = 0; t < c.vars.size(); ++t) lhs += c.coeffs[t] * x[c.vars[t]];
    switch (c.relation) {
      case Relation::kLessEqual:
        if (lhs > c.rhs + tol) return false;
        break;
      case Relation::kGreaterEqual:
        if (lhs < c.rhs - tol) return false;
        break;
      case Relation::kEqual:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace vcopt::solver
