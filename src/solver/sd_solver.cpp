#include "solver/sd_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "check/check.h"
#include "check/validators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace vcopt::solver {

namespace {

// Accepts proven optima and budget-truncated incumbents; the latter are
// surfaced (warn-once + counter) so a silently suboptimal answer cannot
// masquerade as exact.
bool usable_ilp_solution(const IlpSolution& sol, const char* where) {
  if (sol.status == SolveStatus::kOptimal) return true;
  if (sol.status == SolveStatus::kFeasibleBudget) {
    obs::MetricsRegistry::global()
        .counter("solver/budget_truncated_solves")
        .add();
    util::log_warn_once(std::string("sd_solver/budget/") + where)
        << where << ": B&B node budget truncated the search after "
        << sol.nodes_explored
        << " nodes; using the best incumbent (NOT proven optimal)";
    return true;
  }
  return false;
}

void check_shapes(const cluster::Request& request,
                  const util::IntMatrix& remaining,
                  const util::DoubleMatrix& dist) {
  const std::size_t n = remaining.rows();
  if (dist.rows() != n || dist.cols() != n) {
    throw std::invalid_argument("sd_solver: distance matrix shape mismatch");
  }
  if (request.type_count() != remaining.cols()) {
    throw std::invalid_argument("sd_solver: request type count mismatch");
  }
}

}  // namespace

std::optional<cluster::Allocation> fill_for_central(
    const cluster::Request& request, const util::IntMatrix& remaining,
    const util::DoubleMatrix& dist, std::size_t central) {
  check_shapes(request, remaining, dist);
  const std::size_t n = remaining.rows();
  const std::size_t m = remaining.cols();
  if (central >= n) throw std::out_of_range("fill_for_central: central");

  // Nodes sorted by distance from the central node (nearest first); ties by
  // index for determinism.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return dist(a, central) < dist(b, central);
  });

  cluster::Allocation alloc(n, m);
  std::vector<int> need = request.counts();
  for (std::size_t idx : order) {
    bool done = true;
    for (std::size_t j = 0; j < m; ++j) {
      if (need[j] > 0) {
        const int take = std::min(need[j], remaining(idx, j));
        if (take > 0) {
          alloc.at(idx, j) = take;
          need[j] -= take;
        }
      }
      if (need[j] > 0) done = false;
    }
    if (done) break;
  }
  for (int rest : need) {
    if (rest > 0) return std::nullopt;  // insufficient capacity
  }
  return alloc;
}

SdResult solve_sd_exact(const cluster::Request& request,
                        const util::IntMatrix& remaining,
                        const util::DoubleMatrix& dist) {
  VCOPT_TRACE_SPAN("solver/sd_exact");
  check_shapes(request, remaining, dist);
  SdResult best;
  best.distance = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < remaining.rows(); ++k) {
    const auto alloc = fill_for_central(request, remaining, dist, k);
    if (!alloc) return SdResult{};  // same capacity for every k: infeasible
    const double d = alloc->distance_from(k, dist);
    if (!best.feasible || d < best.distance) {
      best.feasible = true;
      best.allocation = *alloc;
      best.central = k;
      best.distance = d;
    }
  }
  if (best.feasible) {
    // Def. 2 feasibility + Def. 1 cross-check: the reported distance must be
    // DC(C) under an independent recomputation (Theorem 1 guarantees the
    // scan's minimum is also the allocation's optimal central).
    VCOPT_VALIDATE(check::validate_allocation(best.allocation.counts(),
                                              request.counts(), remaining));
    VCOPT_VALIDATE(
        check::validate_dc_optimal(best.allocation.counts(), dist,
                                   best.distance));
  }
  return best;
}

SdResult solve_sd_exact_weighted(const cluster::Request& request,
                                 const util::IntMatrix& remaining,
                                 const util::DoubleMatrix& dist,
                                 const std::vector<double>& weights) {
  check_shapes(request, remaining, dist);
  SdResult best;
  best.distance = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < remaining.rows(); ++k) {
    // For fixed k the optimal per-type fill is weight-independent (positive
    // weights scale each type's cost uniformly), so the unweighted fill is
    // reused and only the objective changes.
    const auto alloc = fill_for_central(request, remaining, dist, k);
    if (!alloc) return SdResult{};
    const double d = alloc->weighted_distance_from(k, dist, weights);
    if (!best.feasible || d < best.distance) {
      best.feasible = true;
      best.allocation = *alloc;
      best.central = k;
      best.distance = d;
    }
  }
  if (best.feasible) {
    VCOPT_VALIDATE(check::validate_allocation(best.allocation.counts(),
                                              request.counts(), remaining));
  }
  return best;
}

LpModel build_sd_model(const cluster::Request& request,
                       const util::IntMatrix& remaining,
                       const util::DoubleMatrix& dist, std::size_t central) {
  check_shapes(request, remaining, dist);
  const std::size_t n = remaining.rows();
  const std::size_t m = remaining.cols();
  if (central >= n) throw std::out_of_range("build_sd_model: central");

  LpModel model;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      model.add_variable(0, remaining(i, j), dist(i, central), /*integral=*/true,
                         "x_" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    Constraint c;
    c.relation = Relation::kEqual;
    c.rhs = request.count(j);
    c.name = "demand_" + std::to_string(j);
    for (std::size_t i = 0; i < n; ++i) {
      c.vars.push_back(i * m + j);
      c.coeffs.push_back(1.0);
    }
    model.add_constraint(std::move(c));
  }
  return model;
}

SdResult solve_sd_ilp(const cluster::Request& request,
                      const util::IntMatrix& remaining,
                      const util::DoubleMatrix& dist, const IlpOptions& options) {
  VCOPT_TRACE_SPAN("solver/sd_ilp");
  check_shapes(request, remaining, dist);
  const std::size_t n = remaining.rows();
  const std::size_t m = remaining.cols();
  SdResult best;
  best.distance = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < n; ++k) {
    const LpModel model = build_sd_model(request, remaining, dist, k);
    const IlpSolution sol = solve_ilp(model, options);
    if (!usable_ilp_solution(sol, "solve_sd_ilp")) continue;
    if (!best.feasible || sol.objective < best.distance) {
      cluster::Allocation alloc(n, m);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
          alloc.at(i, j) = static_cast<int>(std::lround(sol.x[i * m + j]));
        }
      }
      best.feasible = true;
      best.allocation = std::move(alloc);
      best.central = k;
      best.distance = sol.objective;
    }
  }
  if (best.feasible) {
    // Budget-truncated incumbents may not be DC-optimal, so only the forced-
    // central distance is cross-checked here (it must match the ILP
    // objective exactly).
    VCOPT_VALIDATE(check::validate_allocation(best.allocation.counts(),
                                              request.counts(), remaining));
    VCOPT_VALIDATE(check::validate_reported_distance(
        best.allocation.counts(), dist, best.central, best.distance, 1e-6));
  }
  return best;
}

LpModel build_gsd_model(const std::vector<cluster::Request>& requests,
                        const util::IntMatrix& remaining,
                        const util::DoubleMatrix& dist,
                        const std::vector<std::size_t>& centrals) {
  if (requests.empty()) throw std::invalid_argument("build_gsd_model: no requests");
  if (centrals.size() != requests.size()) {
    throw std::invalid_argument("build_gsd_model: one central per request needed");
  }
  for (const auto& r : requests) check_shapes(r, remaining, dist);
  const std::size_t n = remaining.rows();
  const std::size_t m = remaining.cols();
  const std::size_t p = requests.size();

  LpModel model;
  for (std::size_t k = 0; k < p; ++k) {
    if (centrals[k] >= n) throw std::out_of_range("build_gsd_model: central");
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        // Per-variable upper bound is the shared capacity; the shared-cap
        // constraint below enforces the coupling across requests.
        model.add_variable(0, remaining(i, j), dist(i, centrals[k]),
                           /*integral=*/true,
                           "x_" + std::to_string(k) + "_" + std::to_string(i) +
                               "_" + std::to_string(j));
      }
    }
  }
  // Demand: sum_i x^k_ij = R^k_j.
  for (std::size_t k = 0; k < p; ++k) {
    for (std::size_t j = 0; j < m; ++j) {
      Constraint c;
      c.relation = Relation::kEqual;
      c.rhs = requests[k].count(j);
      c.name = "demand_" + std::to_string(k) + "_" + std::to_string(j);
      for (std::size_t i = 0; i < n; ++i) {
        c.vars.push_back((k * n + i) * m + j);
        c.coeffs.push_back(1.0);
      }
      model.add_constraint(std::move(c));
    }
  }
  // Shared capacity: sum_k x^k_ij <= L_ij.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      Constraint c;
      c.relation = Relation::kLessEqual;
      c.rhs = remaining(i, j);
      c.name = "cap_" + std::to_string(i) + "_" + std::to_string(j);
      for (std::size_t k = 0; k < p; ++k) {
        c.vars.push_back((k * n + i) * m + j);
        c.coeffs.push_back(1.0);
      }
      model.add_constraint(std::move(c));
    }
  }
  return model;
}

GsdResult solve_gsd_exact(const std::vector<cluster::Request>& requests,
                          const util::IntMatrix& remaining,
                          const util::DoubleMatrix& dist,
                          std::size_t max_tuples, const IlpOptions& options) {
  VCOPT_TRACE_SPAN("solver/gsd_exact");
  if (requests.empty()) throw std::invalid_argument("solve_gsd_exact: no requests");
  const std::size_t n = remaining.rows();
  const std::size_t m = remaining.cols();
  const std::size_t p = requests.size();

  // Guard the n^p enumeration.
  double tuples = 1;
  for (std::size_t k = 0; k < p; ++k) tuples *= static_cast<double>(n);
  if (tuples > static_cast<double>(max_tuples)) {
    throw std::invalid_argument(
        "solve_gsd_exact: n^p exceeds max_tuples; instance too large for "
        "exact enumeration");
  }

  GsdResult best;
  best.total_distance = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> centrals(p, 0);
  while (true) {
    const LpModel model = build_gsd_model(requests, remaining, dist, centrals);
    const IlpSolution sol = solve_ilp(model, options);
    if (usable_ilp_solution(sol, "solve_gsd_exact") &&
        sol.objective < best.total_distance) {
      best.feasible = true;
      best.total_distance = sol.objective;
      best.centrals = centrals;
      best.allocations.assign(p, cluster::Allocation(n, m));
      for (std::size_t k = 0; k < p; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < m; ++j) {
            best.allocations[k].at(i, j) =
                static_cast<int>(std::lround(sol.x[(k * n + i) * m + j]));
          }
        }
      }
    }
    // Advance the central-node tuple (odometer).
    std::size_t pos = 0;
    while (pos < p && ++centrals[pos] == n) {
      centrals[pos] = 0;
      ++pos;
    }
    if (pos == p) break;
  }
#if VCOPT_ENABLE_CHECKS
  if (best.feasible) {
    // Definition 4: per-request demand is met and the COMBINED allocation
    // respects the shared capacity (per-request fit alone is not enough).
    util::IntMatrix combined(n, m);
    for (std::size_t k = 0; k < p; ++k) {
      VCOPT_VALIDATE(check::validate_allocation(best.allocations[k].counts(),
                                                requests[k].counts(),
                                                remaining));
      combined += best.allocations[k].counts();
    }
    VCOPT_VALIDATE(check::validate_fits(combined, remaining));
  }
#endif
  return best;
}

}  // namespace vcopt::solver
