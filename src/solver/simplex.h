// Two-phase primal simplex on a dense full tableau.
//
// Scope: the LPs in this repo (SD/GSD relaxations) are small — at most a few
// hundred variables — so a dense tableau with Bland's anti-cycling rule is
// the simplest implementation that is provably terminating and exact enough.
// Finite lower bounds are shifted to zero and finite upper bounds become
// explicit rows, keeping the core in textbook standard form.
#pragma once

#include "solver/lp_model.h"

namespace vcopt::solver {

struct SimplexOptions {
  std::size_t max_iterations = 200000;
  double tolerance = 1e-9;
};

/// Solves the LP relaxation of `model` (integrality flags are ignored).
/// Returns an optimal basic solution, or kInfeasible / kUnbounded /
/// kIterationLimit.
LpSolution solve_lp(const LpModel& model, const SimplexOptions& options = {});

}  // namespace vcopt::solver
