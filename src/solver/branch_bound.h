// Branch-and-bound integer linear programming on top of the simplex solver.
//
// Best-first search on the LP relaxation bound, branching on the most
// fractional integer variable with floor/ceil bound splits.  Exact for the
// small ILPs in this repo (SD and small GSD instances); the node budget
// guards against pathological models.
#pragma once

#include <cstddef>

#include "solver/lp_model.h"

namespace vcopt::solver {

struct IlpOptions {
  std::size_t max_nodes = 100000;     ///< B&B node budget
  double integrality_tol = 1e-6;      ///< |x - round(x)| below this is integral
  double gap_tol = 1e-9;              ///< prune bound >= incumbent - gap_tol
};

struct IlpSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0;
  std::vector<double> x;
  std::size_t nodes_explored = 0;
  bool node_limit_hit = false;  ///< true if search stopped early (solution may be suboptimal)
};

/// Minimises the model treating variables flagged `integral` as integers.
IlpSolution solve_ilp(const LpModel& model, const IlpOptions& options = {});

}  // namespace vcopt::solver
