#include "cluster/request.h"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace vcopt::cluster {

Request::Request(std::vector<int> counts, std::uint64_t id, int priority)
    : counts_(std::move(counts)), id_(id), priority_(priority) {
  if (counts_.empty()) throw std::invalid_argument("Request: no VM types");
  for (int c : counts_) {
    if (c < 0) throw std::invalid_argument("Request: negative VM count");
  }
}

int Request::count(std::size_t type) const {
  if (type >= counts_.size()) throw std::out_of_range("Request::count");
  return counts_[type];
}

int Request::total_vms() const {
  return std::accumulate(counts_.begin(), counts_.end(), 0);
}

std::string Request::describe() const {
  std::ostringstream os;
  os << "R" << id_ << "(";
  for (std::size_t j = 0; j < counts_.size(); ++j) {
    os << (j ? "," : "") << counts_[j];
  }
  os << ")";
  return os.str();
}

}  // namespace vcopt::cluster
