// The Cloud facade: VM catalogue + physical topology + capacity inventory,
// plus lease bookkeeping so the queueing simulations can hold and later
// release whole virtual clusters by id.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "cluster/allocation.h"
#include "cluster/inventory.h"
#include "cluster/request.h"
#include "cluster/topology.h"
#include "cluster/vm_type.h"

namespace vcopt::cluster {

/// Identifier for a granted virtual cluster (lease).
using LeaseId = std::uint64_t;

class Cloud {
 public:
  /// Capacity matrix rows must match topology.node_count(); columns must
  /// match catalog.size().
  Cloud(Topology topology, VmCatalog catalog, util::IntMatrix max_capacity);

  const Topology& topology() const { return topology_; }
  const VmCatalog& catalog() const { return catalog_; }
  const Inventory& inventory() const { return inventory_; }
  const util::DoubleMatrix& distance_matrix() const {
    return topology_.distance_matrix();
  }

  std::size_t node_count() const { return topology_.node_count(); }
  std::size_t type_count() const { return catalog_.size(); }

  Admission admit(const Request& request) const {
    return inventory_.admit(request);
  }
  util::IntMatrix remaining() const { return inventory_.remaining(); }

  /// Grants an allocation and records it as a lease.  The allocation must
  /// satisfy the request and fit remaining capacity.
  LeaseId grant(const Request& request, const Allocation& alloc);

  /// Releases a lease, returning its allocation to the pool.
  void release(LeaseId id);

  /// Maintenance control (§VII): a drained node keeps its current leases
  /// but offers no further capacity until undrained.
  void drain_node(std::size_t node) { inventory_.drain_node(node); }
  void undrain_node(std::size_t node) { inventory_.undrain_node(node); }
  bool is_drained(std::size_t node) const { return inventory_.is_drained(node); }

  bool has_lease(LeaseId id) const { return leases_.count(id) > 0; }
  std::size_t lease_count() const { return leases_.size(); }
  const Allocation& lease_allocation(LeaseId id) const;

  std::string describe() const;

 private:
  Topology topology_;
  VmCatalog catalog_;
  Inventory inventory_;
  std::map<LeaseId, Allocation> leases_;
  LeaseId next_lease_ = 1;
};

}  // namespace vcopt::cluster
