// The Cloud facade: VM catalogue + physical topology + capacity inventory,
// plus lease bookkeeping so the queueing simulations can hold and later
// release whole virtual clusters by id.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "cluster/allocation.h"
#include "cluster/inventory.h"
#include "cluster/request.h"
#include "cluster/topology.h"
#include "cluster/vm_type.h"

namespace vcopt::cluster {

/// Identifier for a granted virtual cluster (lease).
using LeaseId = std::uint64_t;

class Cloud;

/// Observer of capacity mutations.  The cell directory registers one so its
/// per-cell sketches stay incrementally fresh on every grant / release /
/// fault / drain / lease-resize / migration step without rescanning the
/// inventory.  Called synchronously after the books are updated; callbacks
/// must not mutate the cloud.
class CapacityListener {
 public:
  virtual ~CapacityListener() = default;
  /// `nodes` lists the rows whose effective free capacity may have changed
  /// (deduplicated, but in mutation order, not sorted).
  virtual void on_capacity_changed(const Cloud& cloud,
                                   const std::vector<std::size_t>& nodes) = 0;
};

class Cloud {
 public:
  /// Capacity matrix rows must match topology.node_count(); columns must
  /// match catalog.size().
  Cloud(Topology topology, VmCatalog catalog, util::IntMatrix max_capacity);

  const Topology& topology() const { return topology_; }
  const VmCatalog& catalog() const { return catalog_; }
  const Inventory& inventory() const { return inventory_; }
  const util::DoubleMatrix& distance_matrix() const {
    return topology_.distance_matrix();
  }

  std::size_t node_count() const { return topology_.node_count(); }
  std::size_t type_count() const { return catalog_.size(); }

  Admission admit(const Request& request) const {
    return inventory_.admit(request);
  }
  /// Remaining capacity net of in-flight migration reservations (clamped at
  /// zero where a node failed with reservations outstanding).  Identical to
  /// inventory().remaining() while no migration is pending.
  util::IntMatrix remaining() const;

  /// One cell of remaining(): free slots of `type` on `node`, net of
  /// migration reservations, zero while the node is failed or drained.
  int remaining_at(std::size_t node, std::size_t type) const;

  /// Registers (or clears, with nullptr) the capacity observer.  At most one;
  /// the caller keeps ownership and must outlive the cloud or deregister.
  void set_capacity_listener(CapacityListener* listener) {
    listener_ = listener;
  }

  /// Grants an allocation and records it as a lease.  The allocation must
  /// satisfy the request and fit remaining capacity.
  LeaseId grant(const Request& request, const Allocation& alloc);

  /// Releases a lease, returning its allocation to the pool.
  void release(LeaseId id);

  /// Maintenance control (§VII): a drained node keeps its current leases
  /// but offers no further capacity until undrained.
  void drain_node(std::size_t node) {
    inventory_.drain_node(node);
    notify_one(node);
  }
  void undrain_node(std::size_t node) {
    inventory_.undrain_node(node);
    notify_one(node);
  }
  bool is_drained(std::size_t node) const { return inventory_.is_drained(node); }

  /// Crashes a node: its capacity is revoked until recover_node and the VMs
  /// it hosted are lost.  Returns the leases that had at least one VM there
  /// (the repair layer shrinks those and re-places the lost VMs).  The lease
  /// allocations themselves are NOT modified here — a failed-then-recovered
  /// node with no repair in between keeps its VMs.
  std::vector<LeaseId> fail_node(std::size_t node);
  void recover_node(std::size_t node) {
    inventory_.recover_node(node);
    notify_one(node);
  }
  bool is_failed(std::size_t node) const { return inventory_.is_failed(node); }

  /// The slice of a lease's allocation hosted on `node` (zero elsewhere).
  Allocation lease_part_on_node(LeaseId id, std::size_t node) const;

  /// Removes `lost` VMs from a lease (failure revocation): the lease's
  /// allocation and the inventory both shrink.  Throws if the lease does not
  /// hold all of `lost`.  A lease shrunk to zero VMs stays registered until
  /// released (the repair layer owns that decision).
  void shrink_lease(LeaseId id, const Allocation& lost);

  /// Adds replacement VMs to a lease (repair): `extra` must fit remaining
  /// capacity (which excludes failed/drained nodes).
  void grow_lease(LeaseId id, const Allocation& extra);

  // --- live migration (two-phase reserve -> move -> commit) --------------
  //
  // begin_migration() reserves one destination slot, so concurrent grants
  // and repairs cannot race the in-flight copy for its capacity; the slot
  // is invisible to remaining() until the migration commits or rolls back.
  // commit_migration() re-validates the world before moving the VM — if the
  // source VM was lost (node crash shrank the lease), the lease ended, or
  // the destination went down/drained mid-copy, it rolls the reservation
  // back instead and reports failure, so a migration can never corrupt the
  // books no matter what failed underneath it.

  /// Starts migrating one VM of `type` held by `lease` from node `from` to
  /// node `to`.  Returns a ticket id (> 0), or 0 when the migration cannot
  /// start right now: no free slot at `to`, `to` failed or drained, `from`
  /// failed, or the lease holds no such VM — all transient conditions a
  /// caller may retry.  Throws std::invalid_argument on caller bugs
  /// (unknown lease, out-of-range node/type, from == to).
  std::uint64_t begin_migration(LeaseId lease, std::size_t from,
                                std::size_t to, std::size_t type);

  /// Completes an in-flight migration: moves the VM and frees the
  /// reservation.  Returns false — after rolling the reservation back — when
  /// the world changed underneath the copy (source VM gone, lease released,
  /// destination failed or drained).  Throws on an unknown ticket.
  bool commit_migration(std::uint64_t ticket);

  /// Abandons an in-flight migration, freeing its reservation.  Throws on
  /// an unknown ticket.
  void rollback_migration(std::uint64_t ticket);

  std::size_t pending_migration_count() const { return migrations_.size(); }

  bool has_lease(LeaseId id) const { return leases_.count(id) > 0; }
  std::size_t lease_count() const { return leases_.size(); }
  const Allocation& lease_allocation(LeaseId id) const;
  /// Ids of all live leases, ascending (telemetry sampling / audits).
  std::vector<LeaseId> lease_ids() const;

  std::string describe() const;

 private:
  void notify_one(std::size_t node);
  void notify_pair(std::size_t a, std::size_t b);
  void notify_alloc(const Allocation& alloc);

  struct PendingMigration {
    LeaseId lease = 0;
    std::size_t from = 0;
    std::size_t to = 0;
    std::size_t type = 0;
  };

  Topology topology_;
  VmCatalog catalog_;
  Inventory inventory_;
  std::map<LeaseId, Allocation> leases_;
  LeaseId next_lease_ = 1;
  /// Destination slots held by in-flight migrations; subtracted from
  /// remaining() so nothing else can claim them mid-copy.
  util::IntMatrix reserved_;
  int reserved_total_ = 0;
  std::map<std::uint64_t, PendingMigration> migrations_;
  std::uint64_t next_migration_ = 1;
  CapacityListener* listener_ = nullptr;
};

}  // namespace vcopt::cluster
