// The Cloud facade: VM catalogue + physical topology + capacity inventory,
// plus lease bookkeeping so the queueing simulations can hold and later
// release whole virtual clusters by id.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "cluster/allocation.h"
#include "cluster/inventory.h"
#include "cluster/request.h"
#include "cluster/topology.h"
#include "cluster/vm_type.h"

namespace vcopt::cluster {

/// Identifier for a granted virtual cluster (lease).
using LeaseId = std::uint64_t;

class Cloud {
 public:
  /// Capacity matrix rows must match topology.node_count(); columns must
  /// match catalog.size().
  Cloud(Topology topology, VmCatalog catalog, util::IntMatrix max_capacity);

  const Topology& topology() const { return topology_; }
  const VmCatalog& catalog() const { return catalog_; }
  const Inventory& inventory() const { return inventory_; }
  const util::DoubleMatrix& distance_matrix() const {
    return topology_.distance_matrix();
  }

  std::size_t node_count() const { return topology_.node_count(); }
  std::size_t type_count() const { return catalog_.size(); }

  Admission admit(const Request& request) const {
    return inventory_.admit(request);
  }
  util::IntMatrix remaining() const { return inventory_.remaining(); }

  /// Grants an allocation and records it as a lease.  The allocation must
  /// satisfy the request and fit remaining capacity.
  LeaseId grant(const Request& request, const Allocation& alloc);

  /// Releases a lease, returning its allocation to the pool.
  void release(LeaseId id);

  /// Maintenance control (§VII): a drained node keeps its current leases
  /// but offers no further capacity until undrained.
  void drain_node(std::size_t node) { inventory_.drain_node(node); }
  void undrain_node(std::size_t node) { inventory_.undrain_node(node); }
  bool is_drained(std::size_t node) const { return inventory_.is_drained(node); }

  /// Crashes a node: its capacity is revoked until recover_node and the VMs
  /// it hosted are lost.  Returns the leases that had at least one VM there
  /// (the repair layer shrinks those and re-places the lost VMs).  The lease
  /// allocations themselves are NOT modified here — a failed-then-recovered
  /// node with no repair in between keeps its VMs.
  std::vector<LeaseId> fail_node(std::size_t node);
  void recover_node(std::size_t node) { inventory_.recover_node(node); }
  bool is_failed(std::size_t node) const { return inventory_.is_failed(node); }

  /// The slice of a lease's allocation hosted on `node` (zero elsewhere).
  Allocation lease_part_on_node(LeaseId id, std::size_t node) const;

  /// Removes `lost` VMs from a lease (failure revocation): the lease's
  /// allocation and the inventory both shrink.  Throws if the lease does not
  /// hold all of `lost`.  A lease shrunk to zero VMs stays registered until
  /// released (the repair layer owns that decision).
  void shrink_lease(LeaseId id, const Allocation& lost);

  /// Adds replacement VMs to a lease (repair): `extra` must fit remaining
  /// capacity (which excludes failed/drained nodes).
  void grow_lease(LeaseId id, const Allocation& extra);

  bool has_lease(LeaseId id) const { return leases_.count(id) > 0; }
  std::size_t lease_count() const { return leases_.size(); }
  const Allocation& lease_allocation(LeaseId id) const;
  /// Ids of all live leases, ascending (telemetry sampling / audits).
  std::vector<LeaseId> lease_ids() const;

  std::string describe() const;

 private:
  Topology topology_;
  VmCatalog catalog_;
  Inventory inventory_;
  std::map<LeaseId, Allocation> leases_;
  LeaseId next_lease_ = 1;
};

}  // namespace vcopt::cluster
