// A virtual-cluster request: the vector R of §II — how many instances of
// each VM type the user wants, requested atomically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vcopt::cluster {

/// Request vector R.  counts[j] = number of VMs of type j requested.
/// `priority` orders the wait queue under the priority discipline (§III.C:
/// "requests will be served according to some scheduling strategies such as
/// priority-based or FIFO"); larger = more urgent.
class Request {
 public:
  Request() = default;
  explicit Request(std::vector<int> counts, std::uint64_t id = 0,
                   int priority = 0);

  std::uint64_t id() const { return id_; }
  int priority() const { return priority_; }
  std::size_t type_count() const { return counts_.size(); }
  int count(std::size_t type) const;
  int operator[](std::size_t type) const { return count(type); }
  const std::vector<int>& counts() const { return counts_; }

  /// Total number of VMs across all types.
  int total_vms() const;
  bool empty() const { return total_vms() == 0; }

  std::string describe() const;

 private:
  std::vector<int> counts_;
  std::uint64_t id_ = 0;
  int priority_ = 0;
};

/// A timed request for the queueing simulations: arrival instant plus how
/// long the virtual cluster is held before release.
struct TimedRequest {
  Request request;
  double arrival_time = 0;
  double hold_time = 0;
};

}  // namespace vcopt::cluster
