// An allocation matrix C (paper §II item 4): C(i,j) = number of VMs of type
// j placed on node i for one virtual cluster.  Carries the paper's central
// metric: the cluster distance DC(C) of Definition 1, minimised over the
// choice of central node.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/request.h"
#include "util/matrix.h"

namespace vcopt::cluster {

/// Result of evaluating DC(C): the best central node and its distance sum.
struct CentralNode {
  std::size_t node = 0;
  double distance = 0;
};

class Allocation {
 public:
  Allocation() = default;
  Allocation(std::size_t nodes, std::size_t types);
  explicit Allocation(util::IntMatrix counts);

  std::size_t node_count() const { return counts_.rows(); }
  std::size_t type_count() const { return counts_.cols(); }

  int& at(std::size_t node, std::size_t type) { return counts_.at(node, type); }
  int at(std::size_t node, std::size_t type) const { return counts_.at(node, type); }

  /// Adds `delta` VMs of `type` on `node`, keeping the matrix's row/col sum
  /// cache consistent incrementally — the Theorem-2 swap loop uses this so
  /// vms_of_type() stays O(1) across thousands of swaps.
  void add(std::size_t node, std::size_t type, int delta) {
    counts_.add_at(node, type, delta);
  }

  const util::IntMatrix& counts() const { return counts_; }

  /// Number of VMs (of all types) hosted on `node`: sum_j C(node, j).
  /// Amortised O(1) via the matrix sum cache.
  int vms_on_node(std::size_t node) const { return counts_.row_sum(node); }
  /// Cluster-wide count of VMs of `type`: sum_i C(i, type).  Amortised O(1).
  int vms_of_type(std::size_t type) const { return counts_.col_sum(type); }
  int total_vms() const { return counts_.total(); }
  bool empty_allocation() const { return total_vms() == 0; }

  /// Nodes hosting at least one VM.
  std::vector<std::size_t> used_nodes() const;

  /// Distance of the cluster when node k is forced as central node:
  /// sum_i (sum_j C_ij) * D(i, k).
  double distance_from(std::size_t k, const util::DoubleMatrix& dist) const;

  /// Definition 1: DC(C) = min_k distance_from(k).  The paper restricts the
  /// central node to any physical node (not only allocated ones); since D is
  /// a hierarchy metric the minimiser is always a used node or tied with one,
  /// but we scan all n to match the definition exactly.
  CentralNode best_central(const util::DoubleMatrix& dist) const;

  /// All central-node choices that achieve the minimum (ties are common when
  /// the whole cluster sits in one rack).
  std::vector<std::size_t> optimal_centrals(const util::DoubleMatrix& dist) const;

  /// Weighted variant of Definition 1 (a §VII-style refinement): VM types
  /// contribute proportionally to `weights[type]` (e.g. compute units, a
  /// proxy for the traffic a VM generates) instead of uniformly.
  /// weights must be positive with size == type_count().
  double weighted_distance_from(std::size_t k, const util::DoubleMatrix& dist,
                                const std::vector<double>& weights) const;
  CentralNode best_weighted_central(const util::DoubleMatrix& dist,
                                    const std::vector<double>& weights) const;

  /// True if this allocation delivers exactly the requested counts:
  /// for all j, sum_i C_ij == R_j.
  bool satisfies(const Request& request) const;

  /// True if the allocation fits in remaining capacity: C_ij <= L_ij.
  bool fits(const util::IntMatrix& remaining) const;

  /// True if all entries are non-negative (structural sanity).
  bool valid() const { return counts_.all_nonnegative(); }

  std::string describe() const;

  bool operator==(const Allocation& o) const { return counts_ == o.counts_; }

 private:
  util::IntMatrix counts_;
};

class Topology;

/// Definition 1 evaluated through the 4-tier hierarchy instead of the dense
/// D matrix: with per-node VM weights w, rack totals and cloud totals, the
/// distance from candidate k collapses to
///   d0·w[k] + d1·(rack[k]−w[k]) + d2·(cloud[k]−rack[k]) + d3·(T−cloud[k]),
/// an O(n) scan (SIMD-friendly, see util/simd.h) versus best_central's
/// O(n²).  Bit-identical to best_central when the DistanceConfig tiers are
/// small non-negative integers (every partial sum is then an exact integer,
/// so summation order is irrelevant); falls back to best_central(dist) for
/// fractional configs, where FP reassociation could flip near-ties.
CentralNode best_central_tiered(const Allocation& alloc,
                                const Topology& topology);

}  // namespace vcopt::cluster
