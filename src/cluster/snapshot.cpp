#include "cluster/snapshot.h"

#include <utility>

namespace vcopt::cluster {

std::shared_ptr<const CloudSnapshot> SnapshotArena::build(const Cloud& cloud,
                                                          std::uint64_t epoch,
                                                          double build_time) {
  std::unique_ptr<CloudSnapshot> snap;
  {
    util::MutexLock lock(pool_->mu);
    if (!pool_->free.empty()) {
      snap = std::move(pool_->free.back());
      pool_->free.pop_back();
    }
  }
  if (!snap) snap = std::make_unique<CloudSnapshot>();

  snap->epoch = epoch;
  snap->build_time = build_time;
  snap->remaining = cloud.remaining();
  // Warm the lazy row/col sum caches from this single thread, before any
  // concurrent reader touches the matrix (util::Matrix threading contract).
  snap->remaining.warm_sums();
  const util::IntMatrix& max = cloud.inventory().max_capacity();
  snap->capacity_col_sums.resize(cloud.type_count());
  for (std::size_t j = 0; j < cloud.type_count(); ++j) {
    snap->capacity_col_sums[j] = max.col_sum(j);
  }
  snap->topology = &cloud.topology();
  snap->type_count = cloud.type_count();

  // The deleter keeps the pool alive and parks the buffers for reuse, so a
  // snapshot released after the arena is destroyed is still safe.
  CloudSnapshot* raw = snap.release();
  std::shared_ptr<Pool> pool = pool_;
  return std::shared_ptr<const CloudSnapshot>(
      raw, [pool](const CloudSnapshot* p) {
        util::MutexLock lock(pool->mu);
        pool->free.emplace_back(const_cast<CloudSnapshot*>(p));
      });
}

std::size_t SnapshotArena::pool_size() const {
  util::MutexLock lock(pool_->mu);
  return pool_->free.size();
}

}  // namespace vcopt::cluster
