// VM type catalogue (paper §II, Table I).  Types are identified by dense
// indices so the capacity matrices M/C/L can be plain integer matrices with
// one column per type.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace vcopt::cluster {

/// One VM flavour a provider offers (Amazon EC2 style "instance type").
struct VmType {
  std::string name;      ///< e.g. "small"
  double memory_gb = 0;  ///< RAM
  int compute_units = 0; ///< abstract CPU capacity (EC2 compute units)
  int storage_gb = 0;    ///< local disk
  int platform_bits = 64;///< 32 or 64
};

/// Immutable, index-addressed set of VM types.
class VmCatalog {
 public:
  VmCatalog() = default;
  explicit VmCatalog(std::vector<VmType> types);

  /// The three types of Table I: small / medium / large.
  static VmCatalog ec2_default();

  std::size_t size() const { return types_.size(); }
  const VmType& type(std::size_t index) const;
  const VmType& operator[](std::size_t index) const { return type(index); }
  std::optional<std::size_t> index_of(const std::string& name) const;

  auto begin() const { return types_.begin(); }
  auto end() const { return types_.end(); }

 private:
  std::vector<VmType> types_;
};

}  // namespace vcopt::cluster
