#include "cluster/sampler.h"

#include <string>

#include "cluster/fragmentation.h"

namespace vcopt::cluster {

ClusterSampler::ClusterSampler(const Cloud& cloud, obs::Recorder& recorder,
                               ClusterSamplerOptions options)
    : cloud_(cloud), recorder_(recorder), options_(options) {
  const std::size_t cap = options_.capacity;
  if (options_.per_node) {
    node_load_.reserve(cloud_.node_count());
    node_free_.reserve(cloud_.node_count());
    for (std::size_t i = 0; i < cloud_.node_count(); ++i) {
      const obs::Labels labels{{"node", std::to_string(i)}};
      node_load_.push_back(&recorder_.series("cluster/node/load", labels, cap));
      node_free_.push_back(&recorder_.series("cluster/node/free", labels, cap));
    }
  }
  utilization_ = &recorder_.series("cluster/utilization", {}, cap);
  leases_ = &recorder_.series("cluster/leases", {}, cap);
  frag_node_conc_ =
      &recorder_.series("cluster/frag/node_concentration", {}, cap);
  frag_rack_conc_ =
      &recorder_.series("cluster/frag/rack_concentration", {}, cap);
  frag_largest_node_ =
      &recorder_.series("cluster/frag/largest_node_request", {}, cap);
  frag_largest_rack_ =
      &recorder_.series("cluster/frag/largest_rack_request", {}, cap);
  frag_free_vms_ = &recorder_.series("cluster/frag/free_vms", {}, cap);
}

void ClusterSampler::sample(double t) {
  if (!recorder_.enabled()) return;
  const Inventory& inv = cloud_.inventory();
  if (options_.per_node) {
    const util::IntMatrix& alloc = inv.allocated();
    const util::IntMatrix remaining = inv.remaining();
    for (std::size_t i = 0; i < cloud_.node_count(); ++i) {
      int load = 0;
      int free = 0;
      for (std::size_t j = 0; j < cloud_.type_count(); ++j) {
        load += alloc.at(i, j);
        free += remaining.at(i, j);
      }
      node_load_[i]->record(t, load);
      node_free_[i]->record(t, free);
    }
  }
  utilization_->record(t, inv.utilization());
  leases_->record(t, static_cast<double>(cloud_.lease_count()));
  const FragmentationStats frag = fragmentation(inv, cloud_.topology());
  frag_node_conc_->record(t, frag.node_concentration);
  frag_rack_conc_->record(t, frag.rack_concentration);
  frag_largest_node_->record(t, frag.largest_single_node_request);
  frag_largest_rack_->record(t, frag.largest_single_rack_request);
  frag_free_vms_->record(t, frag.free_vms);
  if (options_.per_lease) {
    for (const LeaseId id : cloud_.lease_ids()) {
      auto it = lease_dc_.find(id);
      if (it == lease_dc_.end()) {
        if (lease_dc_.size() >= options_.max_lease_series) {
          ++untracked_;
          continue;
        }
        const obs::Labels labels{{"lease", std::to_string(id)}};
        it = lease_dc_
                 .emplace(id, &recorder_.series("cluster/lease/dc", labels,
                                                options_.capacity))
                 .first;
      }
      const Allocation& alloc = cloud_.lease_allocation(id);
      if (alloc.empty_allocation()) continue;  // shrunk-to-zero pending repair
      it->second->record(
          t, alloc.best_central(cloud_.distance_matrix()).distance);
    }
  }
  sampled_once_ = true;
  last_t_ = t;
  ++samples_;
}

bool ClusterSampler::maybe_sample(double t) {
  if (!recorder_.enabled()) return false;
  if (sampled_once_ && t < last_t_ + options_.period) return false;
  sample(t);
  return true;
}

}  // namespace vcopt::cluster
