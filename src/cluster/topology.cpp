#include "cluster/topology.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace vcopt::cluster {

void DistanceConfig::validate() const {
  if (same_node < 0 || !(same_node < same_rack) || !(same_rack < cross_rack) ||
      !(cross_rack < cross_cloud)) {
    throw std::invalid_argument(
        "DistanceConfig: need 0 <= same_node < same_rack < cross_rack < "
        "cross_cloud");
  }
}

Topology::Topology(std::vector<std::size_t> node_rack,
                   std::vector<std::size_t> rack_cloud, DistanceConfig distances)
    : node_rack_(std::move(node_rack)),
      rack_cloud_(std::move(rack_cloud)),
      cfg_(distances) {
  cfg_.validate();
  if (node_rack_.empty()) throw std::invalid_argument("Topology: no nodes");
  if (rack_cloud_.empty()) throw std::invalid_argument("Topology: no racks");
  rack_nodes_.resize(rack_cloud_.size());
  for (std::size_t i = 0; i < node_rack_.size(); ++i) {
    if (node_rack_[i] >= rack_cloud_.size()) {
      throw std::invalid_argument("Topology: node references unknown rack");
    }
    rack_nodes_[node_rack_[i]].push_back(i);
  }
  cloud_count_ = 1 + *std::max_element(rack_cloud_.begin(), rack_cloud_.end());
  dist_mu_ = std::make_shared<util::Mutex>();
}

Topology Topology::uniform(std::size_t racks, std::size_t nodes_per_rack,
                           DistanceConfig distances) {
  return multi_cloud(1, racks, nodes_per_rack, distances);
}

Topology Topology::multi_cloud(std::size_t clouds, std::size_t racks_per_cloud,
                               std::size_t nodes_per_rack,
                               DistanceConfig distances) {
  if (clouds == 0 || racks_per_cloud == 0 || nodes_per_rack == 0) {
    throw std::invalid_argument("Topology: all dimensions must be >= 1");
  }
  std::vector<std::size_t> node_rack;
  std::vector<std::size_t> rack_cloud;
  node_rack.reserve(clouds * racks_per_cloud * nodes_per_rack);
  rack_cloud.reserve(clouds * racks_per_cloud);
  for (std::size_t c = 0; c < clouds; ++c) {
    for (std::size_t r = 0; r < racks_per_cloud; ++r) {
      const std::size_t rack_id = rack_cloud.size();
      rack_cloud.push_back(c);
      for (std::size_t nn = 0; nn < nodes_per_rack; ++nn) {
        node_rack.push_back(rack_id);
      }
    }
  }
  return Topology(std::move(node_rack), std::move(rack_cloud), distances);
}

std::size_t Topology::rack_of(std::size_t node) const {
  if (node >= node_rack_.size()) throw std::out_of_range("Topology::rack_of");
  return node_rack_[node];
}

std::size_t Topology::cloud_of(std::size_t node) const {
  return rack_cloud_[rack_of(node)];
}

std::size_t Topology::cloud_of_rack(std::size_t rack) const {
  if (rack >= rack_cloud_.size()) {
    throw std::out_of_range("Topology::cloud_of_rack");
  }
  return rack_cloud_[rack];
}

const std::vector<std::size_t>& Topology::nodes_in_rack(std::size_t rack) const {
  if (rack >= rack_nodes_.size()) throw std::out_of_range("Topology::nodes_in_rack");
  return rack_nodes_[rack];
}

bool Topology::same_rack(std::size_t a, std::size_t b) const {
  return rack_of(a) == rack_of(b);
}

bool Topology::same_cloud(std::size_t a, std::size_t b) const {
  return cloud_of(a) == cloud_of(b);
}

double Topology::distance(std::size_t a, std::size_t b) const {
  if (a >= node_count() || b >= node_count()) {
    throw std::out_of_range("Topology::distance");
  }
  if (a == b) return cfg_.same_node;
  const std::size_t ra = node_rack_[a];
  const std::size_t rb = node_rack_[b];
  if (ra == rb) return cfg_.same_rack;
  if (rack_cloud_[ra] == rack_cloud_[rb]) return cfg_.cross_rack;
  return cfg_.cross_cloud;
}

const util::DoubleMatrix& Topology::distance_matrix() const {
  util::MutexLock lock(*dist_mu_);
  if (!dist_) {
    const std::size_t n = node_rack_.size();
    auto m = std::make_shared<util::DoubleMatrix>(n, n);
    for (std::size_t a = 0; a < n; ++a) {
      const std::size_t ra = node_rack_[a];
      const std::size_t ca = rack_cloud_[ra];
      for (std::size_t b = 0; b < n; ++b) {
        const std::size_t rb = node_rack_[b];
        double d;
        if (a == b) {
          d = cfg_.same_node;
        } else if (ra == rb) {
          d = cfg_.same_rack;
        } else if (ca == rack_cloud_[rb]) {
          d = cfg_.cross_rack;
        } else {
          d = cfg_.cross_cloud;
        }
        (*m)(a, b) = d;
      }
    }
    dist_ = std::move(m);
  }
  return *dist_;
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << rack_count() << " racks, " << node_count() << " nodes, "
     << cloud_count() << (cloud_count() == 1 ? " cloud" : " clouds");
  return os.str();
}

}  // namespace vcopt::cluster
