// Hierarchical physical topology (paper §II): nodes grouped into racks,
// racks grouped into clouds/sites.  Latency-derived distances: 0 between VMs
// on the same node, d1 within a rack, d2 across racks, d3 across clouds
// (0 < d1 < d2 < d3).  The dense pairwise matrix D drives every placement
// algorithm in the paper.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/matrix.h"
#include "util/mutex.h"

namespace vcopt::cluster {

/// Distance constants of the paper's latency model.
struct DistanceConfig {
  double same_node = 0.0;
  double same_rack = 1.0;   ///< d1
  double cross_rack = 2.0;  ///< d2
  double cross_cloud = 4.0; ///< d3

  /// Throws unless 0 <= same_node < same_rack < cross_rack < cross_cloud.
  void validate() const;
};

/// Immutable description of the physical plant.
class Topology {
 public:
  /// node_rack[i] = rack id of node i; rack_cloud[r] = cloud id of rack r.
  Topology(std::vector<std::size_t> node_rack, std::vector<std::size_t> rack_cloud,
           DistanceConfig distances = {});

  /// Single cloud, `racks` racks with `nodes_per_rack` nodes each
  /// (the simulation setup of §V.A uses uniform(3, 10)).
  static Topology uniform(std::size_t racks, std::size_t nodes_per_rack,
                          DistanceConfig distances = {});

  /// `clouds` sites, each with `racks_per_cloud` racks of `nodes_per_rack`.
  static Topology multi_cloud(std::size_t clouds, std::size_t racks_per_cloud,
                              std::size_t nodes_per_rack,
                              DistanceConfig distances = {});

  std::size_t node_count() const { return node_rack_.size(); }
  std::size_t rack_count() const { return rack_cloud_.size(); }
  std::size_t cloud_count() const { return cloud_count_; }

  std::size_t rack_of(std::size_t node) const;
  std::size_t cloud_of(std::size_t node) const;
  std::size_t cloud_of_rack(std::size_t rack) const;
  const std::vector<std::size_t>& nodes_in_rack(std::size_t rack) const;

  bool same_rack(std::size_t a, std::size_t b) const;
  bool same_cloud(std::size_t a, std::size_t b) const;

  /// Distance between two nodes per the latency model.  O(1) from the
  /// rack/cloud tiers — never touches the dense matrix.
  double distance(std::size_t a, std::size_t b) const;
  /// The dense n x n matrix D.  Built lazily on first call (an n^2 object —
  /// 80 GB at 100k nodes — that cell-routed placement never materialises;
  /// tier-based scans use distance() instead).  Thread-safe; all copies of a
  /// Topology share one matrix.
  const util::DoubleMatrix& distance_matrix() const;

  const DistanceConfig& distances() const { return cfg_; }

  /// Human-readable summary, e.g. "3 racks x 10 nodes (1 cloud)".
  std::string describe() const;

 private:
  std::vector<std::size_t> node_rack_;
  std::vector<std::size_t> rack_cloud_;
  std::vector<std::vector<std::size_t>> rack_nodes_;
  std::size_t cloud_count_ = 0;
  DistanceConfig cfg_;
  /// Lazily built dense D, shared across copies.  The mutex lives behind a
  /// shared_ptr so Topology stays copyable; once the inner pointer is set the
  /// matrix is immutable, so handing out a reference after the lock drops is
  /// safe.
  std::shared_ptr<util::Mutex> dist_mu_;
  mutable std::shared_ptr<const util::DoubleMatrix> dist_;
};

}  // namespace vcopt::cluster
