// Immutable point-in-time views of a Cloud's capacity for the snapshot-
// isolated serving path (docs/performance.md, "serving-path concurrency
// model").
//
// A CloudSnapshot freezes everything a decision window needs to plan
// placements — the remaining-capacity matrix L (sum caches pre-warmed so
// concurrent readers never race the lazy cache), the per-type capacity
// column sums that drive the admit() kReject rung, and a pointer to the
// (immutable) topology — tagged with the epoch of the Cloud state it was
// built from.  Readers load the current snapshot through an atomic
// shared_ptr and plan lock-free; writers validate the epoch at commit time
// and re-plan against a fresh snapshot when it moved.
//
// SnapshotArena recycles snapshot storage: retired snapshots (refcount hits
// zero) return their buffers to a freelist instead of the heap, so steady-
// state serving rebuilds a snapshot without allocating the matrix afresh.
// The freelist is owned by a shared_ptr that each snapshot's deleter also
// holds, so snapshots may safely outlive the arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cloud.h"
#include "util/matrix.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace vcopt::cluster {

/// One frozen view of the Cloud.  Immutable after SnapshotArena::build
/// publishes it; safe for concurrent readers.
struct CloudSnapshot {
  /// Epoch of the Cloud state this snapshot reflects.  The service bumps
  /// its epoch on every capacity mutation (grant batch / release), so
  /// `snapshot.epoch == current epoch` iff no capacity changed since build.
  std::uint64_t epoch = 0;
  /// Service-clock time the snapshot was built (feeds the snapshot_age
  /// gauge); not used for any decision.
  double build_time = 0;
  /// L = M - C at build time, with row/col sum caches warmed.
  util::IntMatrix remaining;
  /// Per-type total capacity sum_i M_ij including drained/failed nodes —
  /// the admit() kReject test ("can never be served") verbatim.
  std::vector<int> capacity_col_sums;
  /// The cloud's topology; topologies are immutable for a Cloud's lifetime,
  /// so sharing the pointer is safe.
  const Topology* topology = nullptr;
  std::size_t type_count = 0;
};

class SnapshotArena {
 public:
  SnapshotArena() : pool_(std::make_shared<Pool>()) {}

  /// Builds a snapshot of `cloud` tagged with `epoch`, reusing retired
  /// snapshot storage when available.  The returned pointer is immutable
  /// and may be read concurrently; when the last reference drops, the
  /// buffers return to this arena's freelist (or the heap if the arena and
  /// all its snapshots are gone).
  std::shared_ptr<const CloudSnapshot> build(const Cloud& cloud,
                                             std::uint64_t epoch,
                                             double build_time);

  /// Snapshots currently parked on the freelist (test observability).
  std::size_t pool_size() const;

 private:
  struct Pool {
    util::Mutex mu;
    std::vector<std::unique_ptr<CloudSnapshot>> free VCOPT_GUARDED_BY(mu);
  };
  std::shared_ptr<Pool> pool_;
};

}  // namespace vcopt::cluster
