#include "cluster/allocation.h"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace vcopt::cluster {

Allocation::Allocation(std::size_t nodes, std::size_t types)
    : counts_(nodes, types, 0) {
  if (nodes == 0 || types == 0) {
    throw std::invalid_argument("Allocation: empty dimensions");
  }
}

Allocation::Allocation(util::IntMatrix counts) : counts_(std::move(counts)) {
  if (counts_.rows() == 0 || counts_.cols() == 0) {
    throw std::invalid_argument("Allocation: empty dimensions");
  }
}

std::vector<std::size_t> Allocation::used_nodes() const {
  std::vector<std::size_t> nodes;
  for (std::size_t i = 0; i < counts_.rows(); ++i) {
    if (vms_on_node(i) > 0) nodes.push_back(i);
  }
  return nodes;
}

double Allocation::distance_from(std::size_t k,
                                 const util::DoubleMatrix& dist) const {
  if (dist.rows() != counts_.rows() || dist.cols() != counts_.rows()) {
    throw std::invalid_argument("Allocation::distance_from: D shape mismatch");
  }
  if (k >= counts_.rows()) throw std::out_of_range("Allocation::distance_from");
  double sum = 0;
  for (std::size_t i = 0; i < counts_.rows(); ++i) {
    const int vms = vms_on_node(i);
    if (vms > 0) sum += static_cast<double>(vms) * dist(i, k);
  }
  return sum;
}

CentralNode Allocation::best_central(const util::DoubleMatrix& dist) const {
  CentralNode best{0, std::numeric_limits<double>::infinity()};
  for (std::size_t k = 0; k < counts_.rows(); ++k) {
    const double d = distance_from(k, dist);
    if (d < best.distance) best = {k, d};
  }
  return best;
}

double Allocation::weighted_distance_from(
    std::size_t k, const util::DoubleMatrix& dist,
    const std::vector<double>& weights) const {
  if (weights.size() != counts_.cols()) {
    throw std::invalid_argument("weighted_distance_from: weights size mismatch");
  }
  for (double w : weights) {
    if (w <= 0) throw std::invalid_argument("weighted_distance_from: weight <= 0");
  }
  if (dist.rows() != counts_.rows() || dist.cols() != counts_.rows()) {
    throw std::invalid_argument("weighted_distance_from: D shape mismatch");
  }
  if (k >= counts_.rows()) {
    throw std::out_of_range("Allocation::weighted_distance_from");
  }
  double sum = 0;
  for (std::size_t i = 0; i < counts_.rows(); ++i) {
    double weight = 0;
    for (std::size_t j = 0; j < counts_.cols(); ++j) {
      weight += weights[j] * counts_(i, j);
    }
    if (weight > 0) sum += weight * dist(i, k);
  }
  return sum;
}

CentralNode Allocation::best_weighted_central(
    const util::DoubleMatrix& dist, const std::vector<double>& weights) const {
  CentralNode best{0, std::numeric_limits<double>::infinity()};
  for (std::size_t k = 0; k < counts_.rows(); ++k) {
    const double d = weighted_distance_from(k, dist, weights);
    if (d < best.distance) best = {k, d};
  }
  return best;
}

std::vector<std::size_t> Allocation::optimal_centrals(
    const util::DoubleMatrix& dist) const {
  const double best = best_central(dist).distance;
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < counts_.rows(); ++k) {
    if (distance_from(k, dist) == best) out.push_back(k);
  }
  return out;
}

bool Allocation::satisfies(const Request& request) const {
  if (request.type_count() != counts_.cols()) return false;
  for (std::size_t j = 0; j < counts_.cols(); ++j) {
    if (counts_.col_sum(j) != request.count(j)) return false;
  }
  return true;
}

bool Allocation::fits(const util::IntMatrix& remaining) const {
  if (remaining.rows() != counts_.rows() || remaining.cols() != counts_.cols()) {
    return false;
  }
  return remaining.dominates(counts_);
}

std::string Allocation::describe() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (std::size_t i = 0; i < counts_.rows(); ++i) {
    if (vms_on_node(i) == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "N" << i << ":(";
    for (std::size_t j = 0; j < counts_.cols(); ++j) {
      os << (j ? "," : "") << counts_(i, j);
    }
    os << ")";
  }
  os << "}";
  return os.str();
}

}  // namespace vcopt::cluster
