#include "cluster/allocation.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "cluster/topology.h"
#include "util/simd.h"

namespace vcopt::cluster {

Allocation::Allocation(std::size_t nodes, std::size_t types)
    : counts_(nodes, types, 0) {
  if (nodes == 0 || types == 0) {
    throw std::invalid_argument("Allocation: empty dimensions");
  }
}

Allocation::Allocation(util::IntMatrix counts) : counts_(std::move(counts)) {
  if (counts_.rows() == 0 || counts_.cols() == 0) {
    throw std::invalid_argument("Allocation: empty dimensions");
  }
}

std::vector<std::size_t> Allocation::used_nodes() const {
  std::vector<std::size_t> nodes;
  for (std::size_t i = 0; i < counts_.rows(); ++i) {
    if (vms_on_node(i) > 0) nodes.push_back(i);
  }
  return nodes;
}

double Allocation::distance_from(std::size_t k,
                                 const util::DoubleMatrix& dist) const {
  if (dist.rows() != counts_.rows() || dist.cols() != counts_.rows()) {
    throw std::invalid_argument("Allocation::distance_from: D shape mismatch");
  }
  if (k >= counts_.rows()) throw std::out_of_range("Allocation::distance_from");
  double sum = 0;
  for (std::size_t i = 0; i < counts_.rows(); ++i) {
    const int vms = vms_on_node(i);
    if (vms > 0) sum += static_cast<double>(vms) * dist(i, k);
  }
  return sum;
}

CentralNode Allocation::best_central(const util::DoubleMatrix& dist) const {
  CentralNode best{0, std::numeric_limits<double>::infinity()};
  for (std::size_t k = 0; k < counts_.rows(); ++k) {
    const double d = distance_from(k, dist);
    if (d < best.distance) best = {k, d};
  }
  return best;
}

double Allocation::weighted_distance_from(
    std::size_t k, const util::DoubleMatrix& dist,
    const std::vector<double>& weights) const {
  if (weights.size() != counts_.cols()) {
    throw std::invalid_argument("weighted_distance_from: weights size mismatch");
  }
  for (double w : weights) {
    if (w <= 0) throw std::invalid_argument("weighted_distance_from: weight <= 0");
  }
  if (dist.rows() != counts_.rows() || dist.cols() != counts_.rows()) {
    throw std::invalid_argument("weighted_distance_from: D shape mismatch");
  }
  if (k >= counts_.rows()) {
    throw std::out_of_range("Allocation::weighted_distance_from");
  }
  double sum = 0;
  for (std::size_t i = 0; i < counts_.rows(); ++i) {
    double weight = 0;
    for (std::size_t j = 0; j < counts_.cols(); ++j) {
      weight += weights[j] * counts_(i, j);
    }
    if (weight > 0) sum += weight * dist(i, k);
  }
  return sum;
}

CentralNode Allocation::best_weighted_central(
    const util::DoubleMatrix& dist, const std::vector<double>& weights) const {
  CentralNode best{0, std::numeric_limits<double>::infinity()};
  for (std::size_t k = 0; k < counts_.rows(); ++k) {
    const double d = weighted_distance_from(k, dist, weights);
    if (d < best.distance) best = {k, d};
  }
  return best;
}

std::vector<std::size_t> Allocation::optimal_centrals(
    const util::DoubleMatrix& dist) const {
  const double best = best_central(dist).distance;
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < counts_.rows(); ++k) {
    if (distance_from(k, dist) == best) out.push_back(k);
  }
  return out;
}

bool Allocation::satisfies(const Request& request) const {
  if (request.type_count() != counts_.cols()) return false;
  for (std::size_t j = 0; j < counts_.cols(); ++j) {
    if (counts_.col_sum(j) != request.count(j)) return false;
  }
  return true;
}

bool Allocation::fits(const util::IntMatrix& remaining) const {
  if (remaining.rows() != counts_.rows() || remaining.cols() != counts_.cols()) {
    return false;
  }
  return remaining.dominates(counts_);
}

namespace {

// Exact-integer gate for the tiered scan: each tier distance must be a
// small non-negative integer so every partial sum in both evaluation orders
// (the legacy ascending-i loop and the tier decomposition) is an exact
// integer well inside double precision (< 2^53), making the two bitwise
// equal regardless of association.
bool exactly_integral(double v) {
  return v >= 0.0 && v <= static_cast<double>(1 << 20) &&
         v == std::floor(v);
}

}  // namespace

CentralNode best_central_tiered(const Allocation& alloc,
                                const Topology& topology) {
  const std::size_t n = alloc.node_count();
  if (topology.node_count() != n) {
    throw std::invalid_argument("best_central_tiered: topology shape mismatch");
  }
  const DistanceConfig& cfg = topology.distances();
  if (!exactly_integral(cfg.same_node) || !exactly_integral(cfg.same_rack) ||
      !exactly_integral(cfg.cross_rack) || !exactly_integral(cfg.cross_cloud)) {
    return alloc.best_central(topology.distance_matrix());
  }

  std::vector<std::int32_t> w(n), rs(n), cs(n);
  std::vector<std::int32_t> rack_total(topology.rack_count(), 0);
  std::vector<std::int32_t> cloud_total(topology.cloud_count(), 0);
  std::int32_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t vms = alloc.vms_on_node(i);
    w[i] = vms;
    total += vms;
    rack_total[topology.rack_of(i)] += vms;
    cloud_total[topology.cloud_of(i)] += vms;
  }
  for (std::size_t i = 0; i < n; ++i) {
    rs[i] = rack_total[topology.rack_of(i)];
    cs[i] = cloud_total[topology.cloud_of(i)];
  }

  const double d[4] = {cfg.same_node, cfg.same_rack, cfg.cross_rack,
                       cfg.cross_cloud};
  std::vector<double> out(n);
  util::simd::central_scan_f64(w.data(), rs.data(), cs.data(), total, d,
                               out.data(), n);

  // Strict < keeps the lowest-index winner on ties, like best_central.
  CentralNode best{0, std::numeric_limits<double>::infinity()};
  for (std::size_t k = 0; k < n; ++k) {
    if (out[k] < best.distance) best = {k, out[k]};
  }
  return best;
}

std::string Allocation::describe() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (std::size_t i = 0; i < counts_.rows(); ++i) {
    if (vms_on_node(i) == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "N" << i << ":(";
    for (std::size_t j = 0; j < counts_.cols(); ++j) {
      os << (j ? "," : "") << counts_(i, j);
    }
    os << ")";
  }
  os << "}";
  return os.str();
}

}  // namespace vcopt::cluster
