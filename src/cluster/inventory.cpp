#include "cluster/inventory.h"

#include <sstream>
#include <stdexcept>

#include "check/check.h"
#include "check/validators.h"

namespace vcopt::cluster {

const char* to_string(Admission a) {
  switch (a) {
    case Admission::kAccept: return "accept";
    case Admission::kWait: return "wait";
    case Admission::kReject: return "reject";
  }
  return "?";
}

Inventory::Inventory(util::IntMatrix max_capacity)
    : max_(std::move(max_capacity)),
      alloc_(max_.rows(), max_.cols(), 0),
      drained_(max_.rows(), false),
      failed_(max_.rows(), false) {
  if (max_.rows() == 0 || max_.cols() == 0) {
    throw std::invalid_argument("Inventory: empty capacity matrix");
  }
  if (!max_.all_nonnegative()) {
    throw std::invalid_argument("Inventory: negative capacity");
  }
}

util::IntMatrix Inventory::remaining() const {
  util::IntMatrix rem = max_ - alloc_;
  for (std::size_t i = 0; i < rem.rows(); ++i) {
    if (drained_[i] || failed_[i]) {
      for (std::size_t j = 0; j < rem.cols(); ++j) rem(i, j) = 0;
    }
  }
  return rem;
}

int Inventory::remaining_at(std::size_t node, std::size_t type) const {
  if (node < drained_.size() && (drained_[node] || failed_[node])) {
    max_.at(node, type);  // still bounds-check the access
    return 0;
  }
  return max_.at(node, type) - alloc_.at(node, type);
}

void Inventory::drain_node(std::size_t node) {
  if (node >= drained_.size()) throw std::out_of_range("Inventory::drain_node");
  drained_[node] = true;
}

void Inventory::undrain_node(std::size_t node) {
  if (node >= drained_.size()) throw std::out_of_range("Inventory::undrain_node");
  drained_[node] = false;
}

bool Inventory::is_drained(std::size_t node) const {
  if (node >= drained_.size()) throw std::out_of_range("Inventory::is_drained");
  return drained_[node];
}

std::size_t Inventory::drained_count() const {
  std::size_t n = 0;
  for (bool d : drained_) {
    if (d) ++n;
  }
  return n;
}

void Inventory::fail_node(std::size_t node) {
  if (node >= failed_.size()) throw std::out_of_range("Inventory::fail_node");
  failed_[node] = true;
}

void Inventory::recover_node(std::size_t node) {
  if (node >= failed_.size()) throw std::out_of_range("Inventory::recover_node");
  failed_[node] = false;
}

bool Inventory::is_failed(std::size_t node) const {
  if (node >= failed_.size()) throw std::out_of_range("Inventory::is_failed");
  return failed_[node];
}

std::size_t Inventory::failed_count() const {
  std::size_t n = 0;
  for (bool f : failed_) {
    if (f) ++n;
  }
  return n;
}

std::vector<int> Inventory::available() const {
  std::vector<int> a(type_count());
  for (std::size_t j = 0; j < type_count(); ++j) {
    a[j] = available_of(j);
  }
  return a;
}

int Inventory::available_of(std::size_t type) const {
  int sum = 0;
  for (std::size_t i = 0; i < node_count(); ++i) sum += remaining_at(i, type);
  return sum;
}

Admission Inventory::admit(const Request& request) const {
  if (request.type_count() != type_count()) {
    throw std::invalid_argument("Inventory::admit: type count mismatch");
  }
  bool wait = false;
  for (std::size_t j = 0; j < type_count(); ++j) {
    if (request.count(j) > max_.col_sum(j)) return Admission::kReject;
    if (request.count(j) > available_of(j)) wait = true;
  }
  return wait ? Admission::kWait : Admission::kAccept;
}

void Inventory::allocate(const Allocation& alloc) {
  if (alloc.node_count() != node_count() || alloc.type_count() != type_count()) {
    throw std::invalid_argument("Inventory::allocate: shape mismatch");
  }
  if (!alloc.valid() || !alloc.fits(remaining())) {
    throw std::invalid_argument("Inventory::allocate: does not fit remaining capacity");
  }
  alloc_ += alloc.counts();
  // C + L == M with 0 <= C <= M must hold after every mutation (drains only
  // mask remaining(), so conservation is checked on the unmasked matrices).
  VCOPT_VALIDATE(
      check::validate_capacity_conservation(alloc_, max_ - alloc_, max_));
}

void Inventory::release(const Allocation& alloc) {
  if (alloc.node_count() != node_count() || alloc.type_count() != type_count()) {
    throw std::invalid_argument("Inventory::release: shape mismatch");
  }
  if (!alloc.valid() || !alloc_.dominates(alloc.counts())) {
    throw std::invalid_argument("Inventory::release: releasing unallocated VMs");
  }
  alloc_ -= alloc.counts();
  VCOPT_VALIDATE(
      check::validate_capacity_conservation(alloc_, max_ - alloc_, max_));
}

double Inventory::utilization() const {
  const int cap = max_.total();
  if (cap == 0) return 0;
  return static_cast<double>(alloc_.total()) / static_cast<double>(cap);
}

std::string Inventory::describe() const {
  std::ostringstream os;
  os << node_count() << " nodes x " << type_count() << " VM types, "
     << alloc_.total() << "/" << max_.total() << " VMs allocated";
  if (const std::size_t f = failed_count()) os << ", " << f << " failed";
  return os.str();
}

}  // namespace vcopt::cluster
