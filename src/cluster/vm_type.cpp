#include "cluster/vm_type.h"

#include <stdexcept>
#include <unordered_set>

namespace vcopt::cluster {

VmCatalog::VmCatalog(std::vector<VmType> types) : types_(std::move(types)) {
  if (types_.empty()) throw std::invalid_argument("VmCatalog: empty");
  std::unordered_set<std::string> seen;
  for (const auto& t : types_) {
    if (t.name.empty()) throw std::invalid_argument("VmCatalog: unnamed type");
    if (!seen.insert(t.name).second) {
      throw std::invalid_argument("VmCatalog: duplicate type name " + t.name);
    }
    if (t.platform_bits != 32 && t.platform_bits != 64) {
      throw std::invalid_argument("VmCatalog: platform must be 32 or 64 bit");
    }
  }
}

VmCatalog VmCatalog::ec2_default() {
  // Table I of the paper (EC2 first-generation instances).
  return VmCatalog({
      {"small", 1.7, 1, 160, 32},
      {"medium", 3.75, 2, 410, 64},
      {"large", 7.5, 4, 850, 64},
  });
}

const VmType& VmCatalog::type(std::size_t index) const {
  if (index >= types_.size()) throw std::out_of_range("VmCatalog::type");
  return types_[index];
}

std::optional<std::size_t> VmCatalog::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) return i;
  }
  return std::nullopt;
}

}  // namespace vcopt::cluster
