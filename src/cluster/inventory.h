// Capacity bookkeeping of §II: the matrices M (maximum VMs each node can
// host, per type), C (currently allocated) and L = M - C (remaining), plus
// the aggregate availability vector A with A_j = sum_i L_ij.
//
// Invariants maintained by this class:
//   0 <= C_ij <= M_ij  for all i, j         (no oversubscription)
//   L = M - C                                (derived, not stored separately)
//   A_j = sum_i L_ij                         (derived)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/allocation.h"
#include "cluster/request.h"
#include "util/matrix.h"

namespace vcopt::cluster {

/// Outcome of the admission test of §II.
enum class Admission {
  kAccept,  ///< R_j <= A_j for all j: can be served now
  kWait,    ///< fits total capacity M but not current availability: queue it
  kReject,  ///< R_j > sum_i M_ij for some j: can never be served
};

const char* to_string(Admission a);

class Inventory {
 public:
  /// Starts with C = 0 (nothing allocated).
  explicit Inventory(util::IntMatrix max_capacity);

  std::size_t node_count() const { return max_.rows(); }
  std::size_t type_count() const { return max_.cols(); }

  const util::IntMatrix& max_capacity() const { return max_; }
  const util::IntMatrix& allocated() const { return alloc_; }

  /// Remaining capacity L = M - C (recomputed; callers hold it by value).
  util::IntMatrix remaining() const;
  int remaining_at(std::size_t node, std::size_t type) const;

  /// Availability vector A: A_j = sum_i L_ij.
  std::vector<int> available() const;
  int available_of(std::size_t type) const;

  /// §II admission rule for a request.
  Admission admit(const Request& request) const;

  /// Applies an allocation (C += alloc).  Throws std::invalid_argument if the
  /// allocation does not fit the remaining capacity; the inventory is left
  /// unchanged in that case (strong exception guarantee).
  void allocate(const Allocation& alloc);

  /// Releases an allocation (C -= alloc).  Throws if more VMs would be
  /// released than are allocated on some node/type.
  void release(const Allocation& alloc);

  /// Fraction of total capacity currently allocated, in [0,1].
  double utilization() const;

  /// Marks a node as draining (maintenance / suspected failure, paper §VII):
  /// its existing allocations stay, but it stops offering remaining
  /// capacity until undrained.  Idempotent.
  void drain_node(std::size_t node);
  void undrain_node(std::size_t node);
  bool is_drained(std::size_t node) const;
  std::size_t drained_count() const;

  /// Marks a node as crashed: it stops offering remaining capacity until
  /// recovered, like a drain, but with harder semantics — VMs allocated
  /// there are considered lost and stay booked in C only until the repair
  /// layer shrinks their leases (Cloud::shrink_lease).  Failures are
  /// transient (a recovery event restores the node), so admit() keeps
  /// counting the failed node's maximum capacity for its can-never-be-served
  /// test while availability (and hence kWait) reflects the outage.
  /// Idempotent.
  void fail_node(std::size_t node);
  void recover_node(std::size_t node);
  bool is_failed(std::size_t node) const;
  std::size_t failed_count() const;
  /// failed-node mask indexed by node (for the repair validators).
  std::vector<bool> failed_mask() const { return failed_; }

  std::string describe() const;

 private:
  util::IntMatrix max_;
  util::IntMatrix alloc_;
  std::vector<bool> drained_;
  std::vector<bool> failed_;
};

}  // namespace vcopt::cluster
