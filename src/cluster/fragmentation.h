// Free-capacity fragmentation metrics (paper §I: affinity-aware
// provisioning lets "cloud providers obtain a higher resource utilization
// ratio").  Affinity-blind policies scatter allocations, so the capacity
// left over is crumbs spread across racks; these metrics quantify how
// usable the leftover is for FUTURE low-distance clusters.
#pragma once

#include "cluster/inventory.h"
#include "cluster/topology.h"

namespace vcopt::cluster {

struct FragmentationStats {
  /// Mean over types (with availability > 0) of the largest single-node
  /// share of that type's free capacity: 1.0 = all free capacity of each
  /// type sits on one node, -> 0 = dust.
  double node_concentration = 0;
  /// Same, with racks instead of nodes.
  double rack_concentration = 0;
  /// Largest VM count (all types combined) hostable on a single node.
  int largest_single_node_request = 0;
  /// Largest VM count hostable within a single rack.
  int largest_single_rack_request = 0;
  /// Total free VMs.
  int free_vms = 0;
};

/// Computes fragmentation of the inventory's current free capacity.
/// Drained nodes contribute nothing (they offer no capacity).
FragmentationStats fragmentation(const Inventory& inventory,
                                 const Topology& topology);

}  // namespace vcopt::cluster
