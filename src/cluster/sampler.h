// Periodic cluster sampler: records the signals a continuous rebalancer
// (ROADMAP) watches — per-node VM load and free capacity, free-capacity
// fragmentation, utilization, lease count and per-lease DC trajectories —
// into an obs::Recorder as time series over simulated (or service-clock)
// time.  Wired into sim::ClusterSim and vcopt::service via their options.
//
// Series written (labels in braces):
//   cluster/node/load{node=i}        VMs hosted on node i
//   cluster/node/free{node=i}        free VM slots on node i
//   cluster/utilization              allocated fraction of total capacity
//   cluster/leases                   live lease count
//   cluster/frag/node_concentration  FragmentationStats fields
//   cluster/frag/rack_concentration
//   cluster/frag/largest_node_request
//   cluster/frag/largest_rack_request
//   cluster/frag/free_vms
//   cluster/lease/dc{lease=id}       DC (Definition 1) of each live lease
//
// Series references are cached at construction (per node) and on first
// sight (per lease), so a sampling tick does no map lookups for node
// series; when the recorder is disabled a tick is one atomic load.
//
// Thread-compatibility: the sampler itself holds no lock — each owner
// (sim::ClusterSim single-threaded; vcopt::service under its service mutex,
// see the VCOPT_PT_GUARDED_BY on PlacementService::sampler_) serialises
// sample()/maybe_sample() externally.  The TimeSeries it writes through are
// internally synchronised (util::Mutex), so concurrent readers exporting the
// recorder are safe.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "cluster/cloud.h"
#include "obs/timeseries.h"

namespace vcopt::cluster {

struct ClusterSamplerOptions {
  /// Minimum time between samples for maybe_sample() (same clock as `t`).
  double period = 1.0;
  bool per_node = true;   ///< record cluster/node/* series
  bool per_lease = true;  ///< record cluster/lease/dc series
  /// Ring capacity for every series this sampler creates.
  std::size_t capacity = 512;
  /// Cap on distinct per-lease series, guarding label cardinality in
  /// long churn runs.  Leases beyond the cap are not tracked (the counter
  /// `untracked_leases()` says how many were skipped).
  std::size_t max_lease_series = 128;
};

class ClusterSampler {
 public:
  /// The cloud and recorder must outlive the sampler.
  ClusterSampler(const Cloud& cloud, obs::Recorder& recorder,
                 ClusterSamplerOptions options = {});

  /// Takes a sample at time `t` unconditionally (no-op while the recorder
  /// is disabled).
  void sample(double t);

  /// Samples only when at least `period` has elapsed since the last sample
  /// (first call always samples).  Returns whether a sample was taken.
  bool maybe_sample(double t);

  std::size_t samples_taken() const { return samples_; }
  std::size_t untracked_leases() const { return untracked_; }
  const ClusterSamplerOptions& options() const { return options_; }

 private:
  const Cloud& cloud_;
  obs::Recorder& recorder_;
  ClusterSamplerOptions options_;

  // Cached series (stable references into the recorder).
  std::vector<obs::TimeSeries*> node_load_;
  std::vector<obs::TimeSeries*> node_free_;
  obs::TimeSeries* utilization_;
  obs::TimeSeries* leases_;
  obs::TimeSeries* frag_node_conc_;
  obs::TimeSeries* frag_rack_conc_;
  obs::TimeSeries* frag_largest_node_;
  obs::TimeSeries* frag_largest_rack_;
  obs::TimeSeries* frag_free_vms_;
  std::map<LeaseId, obs::TimeSeries*> lease_dc_;

  bool sampled_once_ = false;
  double last_t_ = 0;
  std::size_t samples_ = 0;
  std::size_t untracked_ = 0;
};

}  // namespace vcopt::cluster
