#include "cluster/fragmentation.h"

#include <algorithm>
#include <stdexcept>

namespace vcopt::cluster {

FragmentationStats fragmentation(const Inventory& inventory,
                                 const Topology& topology) {
  if (inventory.node_count() != topology.node_count()) {
    throw std::invalid_argument("fragmentation: inventory/topology mismatch");
  }
  const util::IntMatrix free = inventory.remaining();
  const std::size_t n = free.rows();
  const std::size_t m = free.cols();

  FragmentationStats out;
  out.free_vms = free.total();

  double node_sum = 0, rack_sum = 0;
  std::size_t types_counted = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const int total = free.col_sum(j);
    if (total == 0) continue;
    ++types_counted;
    int best_node = 0;
    for (std::size_t i = 0; i < n; ++i) best_node = std::max(best_node, free(i, j));
    int best_rack = 0;
    for (std::size_t r = 0; r < topology.rack_count(); ++r) {
      int rack_total = 0;
      for (std::size_t i : topology.nodes_in_rack(r)) rack_total += free(i, j);
      best_rack = std::max(best_rack, rack_total);
    }
    node_sum += static_cast<double>(best_node) / total;
    rack_sum += static_cast<double>(best_rack) / total;
  }
  if (types_counted > 0) {
    out.node_concentration = node_sum / static_cast<double>(types_counted);
    out.rack_concentration = rack_sum / static_cast<double>(types_counted);
  }

  for (std::size_t i = 0; i < n; ++i) {
    out.largest_single_node_request =
        std::max(out.largest_single_node_request, free.row_sum(i));
  }
  for (std::size_t r = 0; r < topology.rack_count(); ++r) {
    int rack_total = 0;
    for (std::size_t i : topology.nodes_in_rack(r)) rack_total += free.row_sum(i);
    out.largest_single_rack_request =
        std::max(out.largest_single_rack_request, rack_total);
  }
  return out;
}

}  // namespace vcopt::cluster
