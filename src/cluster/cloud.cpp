#include "cluster/cloud.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "check/check.h"
#include "check/validators.h"

namespace vcopt::cluster {

Cloud::Cloud(Topology topology, VmCatalog catalog, util::IntMatrix max_capacity)
    : topology_(std::move(topology)),
      catalog_(std::move(catalog)),
      inventory_(std::move(max_capacity)),
      reserved_(inventory_.node_count(), inventory_.type_count()) {
  if (inventory_.node_count() != topology_.node_count()) {
    throw std::invalid_argument("Cloud: capacity rows != node count");
  }
  if (inventory_.type_count() != catalog_.size()) {
    throw std::invalid_argument("Cloud: capacity cols != catalog size");
  }
}

void Cloud::notify_one(std::size_t node) {
  if (listener_ == nullptr) return;
  listener_->on_capacity_changed(*this, {node});
}

void Cloud::notify_pair(std::size_t a, std::size_t b) {
  if (listener_ == nullptr) return;
  if (a == b) {
    listener_->on_capacity_changed(*this, {a});
  } else {
    listener_->on_capacity_changed(*this, {a, b});
  }
}

void Cloud::notify_alloc(const Allocation& alloc) {
  if (listener_ == nullptr) return;
  listener_->on_capacity_changed(*this, alloc.used_nodes());
}

util::IntMatrix Cloud::remaining() const {
  util::IntMatrix rem = inventory_.remaining();
  if (reserved_total_ == 0) return rem;
  for (std::size_t i = 0; i < rem.rows(); ++i) {
    for (std::size_t j = 0; j < rem.cols(); ++j) {
      // A failed node zeroes its remaining row while reservations on it may
      // still be in flight; clamp so the view never goes negative.
      rem(i, j) = std::max(0, rem(i, j) - reserved_(i, j));
    }
  }
  return rem;
}

LeaseId Cloud::grant(const Request& request, const Allocation& alloc) {
  if (!alloc.satisfies(request)) {
    throw std::invalid_argument("Cloud::grant: allocation does not satisfy request");
  }
  if (reserved_total_ > 0 && !alloc.fits(remaining())) {
    // The inventory alone would admit this, but part of that capacity is
    // reserved by an in-flight migration.
    throw std::invalid_argument(
        "Cloud::grant: allocation does not fit (capacity reserved by "
        "in-flight migrations)");
  }
  inventory_.allocate(alloc);  // throws if it does not fit
  const LeaseId id = next_lease_++;
  leases_.emplace(id, alloc);
  notify_alloc(alloc);
  return id;
}

int Cloud::remaining_at(std::size_t node, std::size_t type) const {
  if (node >= node_count() || type >= type_count()) {
    throw std::out_of_range("Cloud::remaining_at");
  }
  return std::max(0, inventory_.remaining_at(node, type) - reserved_(node, type));
}

void Cloud::release(LeaseId id) {
  auto it = leases_.find(id);
  if (it == leases_.end()) {
    throw std::invalid_argument("Cloud::release: unknown lease");
  }
  const Allocation alloc = std::move(it->second);
  leases_.erase(it);
  inventory_.release(alloc);
  notify_alloc(alloc);
}

std::vector<LeaseId> Cloud::fail_node(std::size_t node) {
  inventory_.fail_node(node);  // bounds-checks `node`
  notify_one(node);
  std::vector<LeaseId> affected;
  for (const auto& [id, alloc] : leases_) {
    for (std::size_t j = 0; j < alloc.type_count(); ++j) {
      if (alloc.at(node, j) > 0) {
        affected.push_back(id);
        break;
      }
    }
  }
  return affected;
}

Allocation Cloud::lease_part_on_node(LeaseId id, std::size_t node) const {
  const Allocation& alloc = lease_allocation(id);
  if (node >= alloc.node_count()) {
    throw std::out_of_range("Cloud::lease_part_on_node");
  }
  Allocation part(alloc.node_count(), alloc.type_count());
  for (std::size_t j = 0; j < alloc.type_count(); ++j) {
    part.add(node, j, alloc.at(node, j));
  }
  return part;
}

void Cloud::shrink_lease(LeaseId id, const Allocation& lost) {
  auto it = leases_.find(id);
  if (it == leases_.end()) {
    throw std::invalid_argument("Cloud::shrink_lease: unknown lease");
  }
  if (lost.node_count() != node_count() || lost.type_count() != type_count()) {
    throw std::invalid_argument("Cloud::shrink_lease: shape mismatch");
  }
  if (!lost.valid() || !it->second.counts().dominates(lost.counts())) {
    throw std::invalid_argument(
        "Cloud::shrink_lease: lease does not hold the VMs being removed");
  }
  inventory_.release(lost);
  for (std::size_t i = 0; i < lost.node_count(); ++i) {
    for (std::size_t j = 0; j < lost.type_count(); ++j) {
      if (lost.at(i, j) != 0) it->second.add(i, j, -lost.at(i, j));
    }
  }
  notify_alloc(lost);
}

void Cloud::grow_lease(LeaseId id, const Allocation& extra) {
  auto it = leases_.find(id);
  if (it == leases_.end()) {
    throw std::invalid_argument("Cloud::grow_lease: unknown lease");
  }
  if (reserved_total_ > 0 && !extra.fits(remaining())) {
    throw std::invalid_argument(
        "Cloud::grow_lease: allocation does not fit (capacity reserved by "
        "in-flight migrations)");
  }
  inventory_.allocate(extra);  // validates shape and fit
  for (std::size_t i = 0; i < extra.node_count(); ++i) {
    for (std::size_t j = 0; j < extra.type_count(); ++j) {
      if (extra.at(i, j) != 0) it->second.add(i, j, extra.at(i, j));
    }
  }
  notify_alloc(extra);
}

std::uint64_t Cloud::begin_migration(LeaseId lease, std::size_t from,
                                     std::size_t to, std::size_t type) {
  auto it = leases_.find(lease);
  if (it == leases_.end()) {
    throw std::invalid_argument("Cloud::begin_migration: unknown lease");
  }
  if (from >= node_count() || to >= node_count() || type >= type_count()) {
    throw std::invalid_argument(
        "Cloud::begin_migration: node/type out of range");
  }
  if (from == to) {
    throw std::invalid_argument(
        "Cloud::begin_migration: source and destination coincide");
  }
  // Transient refusals (return 0, caller may retry): the source VM must
  // still exist on a live node, and the destination must offer a free,
  // unreserved slot.
  if (it->second.at(from, type) <= 0) return 0;
  if (inventory_.is_failed(from)) return 0;
  if (inventory_.is_failed(to) || inventory_.is_drained(to)) return 0;
  if (inventory_.remaining_at(to, type) - reserved_(to, type) <= 0) return 0;
  reserved_(to, type) += 1;
  ++reserved_total_;
  const std::uint64_t ticket = next_migration_++;
  migrations_.emplace(ticket, PendingMigration{lease, from, to, type});
  notify_one(to);
  return ticket;
}

bool Cloud::commit_migration(std::uint64_t ticket) {
  auto it = migrations_.find(ticket);
  if (it == migrations_.end()) {
    throw std::invalid_argument("Cloud::commit_migration: unknown ticket");
  }
  const PendingMigration m = it->second;
  auto lease_it = leases_.find(m.lease);
  // Re-validate against the current world; any mismatch rolls back.
  const bool source_alive = lease_it != leases_.end() &&
                            lease_it->second.at(m.from, m.type) > 0 &&
                            !inventory_.is_failed(m.from);
  const bool dest_alive =
      !inventory_.is_failed(m.to) && !inventory_.is_drained(m.to);
  if (!source_alive || !dest_alive) {
    rollback_migration(ticket);
    return false;
  }
  Allocation& alloc = lease_it->second;
  const util::IntMatrix before = alloc.counts();
  // Free the reservation first so the inventory move lands in the slot it
  // held (the reservation guaranteed remaining_at(to, type) >= 1).
  reserved_(m.to, m.type) -= 1;
  --reserved_total_;
  migrations_.erase(it);
  Allocation slot(node_count(), type_count());
  slot.add(m.to, m.type, 1);
  inventory_.allocate(slot);
  Allocation freed(node_count(), type_count());
  freed.add(m.from, m.type, 1);
  inventory_.release(freed);
  alloc.add(m.from, m.type, -1);
  alloc.add(m.to, m.type, 1);
  VCOPT_VALIDATE(check::validate_migration_conservation(
      before, alloc.counts(), m.from, m.to, m.type));
  notify_pair(m.from, m.to);
  return true;
}

void Cloud::rollback_migration(std::uint64_t ticket) {
  auto it = migrations_.find(ticket);
  if (it == migrations_.end()) {
    throw std::invalid_argument("Cloud::rollback_migration: unknown ticket");
  }
  const std::size_t to = it->second.to;
  reserved_(to, it->second.type) -= 1;
  --reserved_total_;
  migrations_.erase(it);
  notify_one(to);
}

std::vector<LeaseId> Cloud::lease_ids() const {
  std::vector<LeaseId> out;
  out.reserve(leases_.size());
  for (const auto& [id, alloc] : leases_) out.push_back(id);
  return out;
}

const Allocation& Cloud::lease_allocation(LeaseId id) const {
  auto it = leases_.find(id);
  if (it == leases_.end()) {
    throw std::invalid_argument("Cloud::lease_allocation: unknown lease");
  }
  return it->second;
}

std::string Cloud::describe() const {
  std::ostringstream os;
  os << topology_.describe() << "; " << inventory_.describe() << "; "
     << leases_.size() << " active leases";
  return os.str();
}

}  // namespace vcopt::cluster
