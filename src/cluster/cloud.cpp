#include "cluster/cloud.h"

#include <sstream>
#include <stdexcept>

namespace vcopt::cluster {

Cloud::Cloud(Topology topology, VmCatalog catalog, util::IntMatrix max_capacity)
    : topology_(std::move(topology)),
      catalog_(std::move(catalog)),
      inventory_(std::move(max_capacity)) {
  if (inventory_.node_count() != topology_.node_count()) {
    throw std::invalid_argument("Cloud: capacity rows != node count");
  }
  if (inventory_.type_count() != catalog_.size()) {
    throw std::invalid_argument("Cloud: capacity cols != catalog size");
  }
}

LeaseId Cloud::grant(const Request& request, const Allocation& alloc) {
  if (!alloc.satisfies(request)) {
    throw std::invalid_argument("Cloud::grant: allocation does not satisfy request");
  }
  inventory_.allocate(alloc);  // throws if it does not fit
  const LeaseId id = next_lease_++;
  leases_.emplace(id, alloc);
  return id;
}

void Cloud::release(LeaseId id) {
  auto it = leases_.find(id);
  if (it == leases_.end()) {
    throw std::invalid_argument("Cloud::release: unknown lease");
  }
  inventory_.release(it->second);
  leases_.erase(it);
}

const Allocation& Cloud::lease_allocation(LeaseId id) const {
  auto it = leases_.find(id);
  if (it == leases_.end()) {
    throw std::invalid_argument("Cloud::lease_allocation: unknown lease");
  }
  return it->second;
}

std::string Cloud::describe() const {
  std::ostringstream os;
  os << topology_.describe() << "; " << inventory_.describe() << "; "
     << leases_.size() << " active leases";
  return os.str();
}

}  // namespace vcopt::cluster
