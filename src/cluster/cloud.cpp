#include "cluster/cloud.h"

#include <sstream>
#include <stdexcept>

namespace vcopt::cluster {

Cloud::Cloud(Topology topology, VmCatalog catalog, util::IntMatrix max_capacity)
    : topology_(std::move(topology)),
      catalog_(std::move(catalog)),
      inventory_(std::move(max_capacity)) {
  if (inventory_.node_count() != topology_.node_count()) {
    throw std::invalid_argument("Cloud: capacity rows != node count");
  }
  if (inventory_.type_count() != catalog_.size()) {
    throw std::invalid_argument("Cloud: capacity cols != catalog size");
  }
}

LeaseId Cloud::grant(const Request& request, const Allocation& alloc) {
  if (!alloc.satisfies(request)) {
    throw std::invalid_argument("Cloud::grant: allocation does not satisfy request");
  }
  inventory_.allocate(alloc);  // throws if it does not fit
  const LeaseId id = next_lease_++;
  leases_.emplace(id, alloc);
  return id;
}

void Cloud::release(LeaseId id) {
  auto it = leases_.find(id);
  if (it == leases_.end()) {
    throw std::invalid_argument("Cloud::release: unknown lease");
  }
  inventory_.release(it->second);
  leases_.erase(it);
}

std::vector<LeaseId> Cloud::fail_node(std::size_t node) {
  inventory_.fail_node(node);  // bounds-checks `node`
  std::vector<LeaseId> affected;
  for (const auto& [id, alloc] : leases_) {
    for (std::size_t j = 0; j < alloc.type_count(); ++j) {
      if (alloc.at(node, j) > 0) {
        affected.push_back(id);
        break;
      }
    }
  }
  return affected;
}

Allocation Cloud::lease_part_on_node(LeaseId id, std::size_t node) const {
  const Allocation& alloc = lease_allocation(id);
  if (node >= alloc.node_count()) {
    throw std::out_of_range("Cloud::lease_part_on_node");
  }
  Allocation part(alloc.node_count(), alloc.type_count());
  for (std::size_t j = 0; j < alloc.type_count(); ++j) {
    part.add(node, j, alloc.at(node, j));
  }
  return part;
}

void Cloud::shrink_lease(LeaseId id, const Allocation& lost) {
  auto it = leases_.find(id);
  if (it == leases_.end()) {
    throw std::invalid_argument("Cloud::shrink_lease: unknown lease");
  }
  if (lost.node_count() != node_count() || lost.type_count() != type_count()) {
    throw std::invalid_argument("Cloud::shrink_lease: shape mismatch");
  }
  if (!lost.valid() || !it->second.counts().dominates(lost.counts())) {
    throw std::invalid_argument(
        "Cloud::shrink_lease: lease does not hold the VMs being removed");
  }
  inventory_.release(lost);
  for (std::size_t i = 0; i < lost.node_count(); ++i) {
    for (std::size_t j = 0; j < lost.type_count(); ++j) {
      if (lost.at(i, j) != 0) it->second.add(i, j, -lost.at(i, j));
    }
  }
}

void Cloud::grow_lease(LeaseId id, const Allocation& extra) {
  auto it = leases_.find(id);
  if (it == leases_.end()) {
    throw std::invalid_argument("Cloud::grow_lease: unknown lease");
  }
  inventory_.allocate(extra);  // validates shape and fit
  for (std::size_t i = 0; i < extra.node_count(); ++i) {
    for (std::size_t j = 0; j < extra.type_count(); ++j) {
      if (extra.at(i, j) != 0) it->second.add(i, j, extra.at(i, j));
    }
  }
}

std::vector<LeaseId> Cloud::lease_ids() const {
  std::vector<LeaseId> out;
  out.reserve(leases_.size());
  for (const auto& [id, alloc] : leases_) out.push_back(id);
  return out;
}

const Allocation& Cloud::lease_allocation(LeaseId id) const {
  auto it = leases_.find(id);
  if (it == leases_.end()) {
    throw std::invalid_argument("Cloud::lease_allocation: unknown lease");
  }
  return it->second;
}

std::string Cloud::describe() const {
  std::ostringstream os;
  os << topology_.describe() << "; " << inventory_.describe() << "; "
     << leases_.size() << " active leases";
  return os.str();
}

}  // namespace vcopt::cluster
