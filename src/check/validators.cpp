#include "check/validators.h"

#include <cmath>
#include <limits>
#include <map>
#include <sstream>

namespace vcopt::check {

namespace {

std::string dump_matrix(const char* name, const util::IntMatrix& m) {
  std::ostringstream os;
  os << name << " (" << m.rows() << "x" << m.cols() << "):\n" << m;
  return os.str();
}

}  // namespace

ValidationResult valid() { return ValidationResult{}; }

ValidationResult invalid(std::string message) {
  return ValidationResult{false, std::move(message)};
}

ValidationResult validate_allocation(const util::IntMatrix& counts,
                                     const std::vector<int>& requested,
                                     const util::IntMatrix& remaining) {
  if (counts.rows() != remaining.rows() || counts.cols() != remaining.cols()) {
    std::ostringstream os;
    os << "allocation shape " << counts.rows() << "x" << counts.cols()
       << " does not match capacity shape " << remaining.rows() << "x"
       << remaining.cols();
    return invalid(os.str());
  }
  if (requested.size() != counts.cols()) {
    std::ostringstream os;
    os << "request has " << requested.size() << " types but allocation has "
       << counts.cols() << " columns";
    return invalid(os.str());
  }
  ValidationResult fits = validate_fits(counts, remaining);
  if (!fits.ok) return fits;
  for (std::size_t j = 0; j < counts.cols(); ++j) {
    const int supplied = counts.col_sum(j);
    if (supplied != requested[j]) {
      std::ostringstream os;
      os << "demand violated for type " << j << ": sum_i C_ij = " << supplied
         << " but R_j = " << requested[j] << "\n"
         << dump_matrix("C", counts);
      return invalid(os.str());
    }
  }
  return valid();
}

ValidationResult validate_fits(const util::IntMatrix& counts,
                               const util::IntMatrix& limit) {
  if (counts.rows() != limit.rows() || counts.cols() != limit.cols()) {
    std::ostringstream os;
    os << "shape mismatch: " << counts.rows() << "x" << counts.cols()
       << " vs limit " << limit.rows() << "x" << limit.cols();
    return invalid(os.str());
  }
  for (std::size_t i = 0; i < counts.rows(); ++i) {
    for (std::size_t j = 0; j < counts.cols(); ++j) {
      const int c = counts(i, j);
      if (c < 0) {
        std::ostringstream os;
        os << "negative entry C(" << i << "," << j << ") = " << c << "\n"
           << dump_matrix("C", counts);
        return invalid(os.str());
      }
      if (c > limit(i, j)) {
        std::ostringstream os;
        os << "capacity exceeded at (" << i << "," << j << "): C_ij = " << c
           << " > L_ij = " << limit(i, j) << "\n"
           << dump_matrix("C", counts) << "\n"
           << dump_matrix("L", limit);
        return invalid(os.str());
      }
    }
  }
  return valid();
}

double recompute_distance_from(const util::IntMatrix& counts,
                               std::size_t central,
                               const util::DoubleMatrix& dist) {
  double total = 0;
  for (std::size_t i = 0; i < counts.rows(); ++i) {
    total += static_cast<double>(counts.row_sum(i)) * dist(i, central);
  }
  return total;
}

double recompute_dc(const util::IntMatrix& counts,
                    const util::DoubleMatrix& dist) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < dist.cols(); ++k) {
    const double d = recompute_distance_from(counts, k, dist);
    if (d < best) best = d;
  }
  return best;
}

ValidationResult validate_reported_distance(const util::IntMatrix& counts,
                                            const util::DoubleMatrix& dist,
                                            std::size_t central,
                                            double reported, double tol) {
  if (central >= dist.cols()) {
    std::ostringstream os;
    os << "reported central " << central << " out of range (n = "
       << dist.cols() << ")";
    return invalid(os.str());
  }
  const double actual = recompute_distance_from(counts, central, dist);
  if (std::abs(actual - reported) > tol) {
    std::ostringstream os;
    os << "reported distance " << reported << " for central " << central
       << " disagrees with independent recomputation " << actual
       << " (|diff| = " << std::abs(actual - reported) << " > tol = " << tol
       << ")\n"
       << dump_matrix("C", counts);
    return invalid(os.str());
  }
  return valid();
}

ValidationResult validate_dc_optimal(const util::IntMatrix& counts,
                                     const util::DoubleMatrix& dist,
                                     double reported, double tol) {
  const double dc = recompute_dc(counts, dist);
  if (std::abs(dc - reported) > tol) {
    std::ostringstream os;
    os << "reported distance " << reported
       << " is not DC(C): independent minimisation over all central nodes "
          "gives "
       << dc << " (|diff| = " << std::abs(dc - reported) << " > tol = " << tol
       << ")\n"
       << dump_matrix("C", counts);
    return invalid(os.str());
  }
  return valid();
}

ValidationResult validate_finite(const std::vector<double>& values,
                                 const std::string& what) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      std::ostringstream os;
      os << what << "[" << i << "] = " << values[i] << " is not finite";
      return invalid(os.str());
    }
  }
  return valid();
}

ValidationResult validate_finite(const util::DoubleMatrix& m,
                                 const std::string& what) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (!std::isfinite(m(r, c))) {
        std::ostringstream os;
        os << what << "(" << r << "," << c << ") = " << m(r, c)
           << " is not finite";
        return invalid(os.str());
      }
    }
  }
  return valid();
}

ValidationResult validate_capacity_conservation(
    const util::IntMatrix& allocated, const util::IntMatrix& remaining,
    const util::IntMatrix& max_capacity) {
  if (allocated.rows() != max_capacity.rows() ||
      allocated.cols() != max_capacity.cols() ||
      remaining.rows() != max_capacity.rows() ||
      remaining.cols() != max_capacity.cols()) {
    return invalid("capacity matrices disagree in shape");
  }
  for (std::size_t i = 0; i < allocated.rows(); ++i) {
    for (std::size_t j = 0; j < allocated.cols(); ++j) {
      const int a = allocated(i, j);
      const int l = remaining(i, j);
      const int m = max_capacity(i, j);
      if (a < 0 || a > m || a + l != m) {
        std::ostringstream os;
        os << "capacity conservation violated at (" << i << "," << j
           << "): allocated = " << a << ", remaining = " << l
           << ", max = " << m << " (want 0 <= allocated <= max and "
           << "allocated + remaining == max)\n"
           << dump_matrix("allocated", allocated) << "\n"
           << dump_matrix("remaining", remaining) << "\n"
           << dump_matrix("max", max_capacity);
        return invalid(os.str());
      }
    }
  }
  return valid();
}

ValidationResult validate_repair_conservation(const util::IntMatrix& original,
                                              const util::IntMatrix& lost,
                                              const util::IntMatrix& replacement,
                                              const std::vector<bool>& failed,
                                              bool full_repair) {
  if (lost.rows() != original.rows() || lost.cols() != original.cols() ||
      replacement.rows() != original.rows() ||
      replacement.cols() != original.cols() ||
      failed.size() != original.rows()) {
    return invalid("repair matrices/mask disagree in shape");
  }
  for (std::size_t i = 0; i < original.rows(); ++i) {
    for (std::size_t j = 0; j < original.cols(); ++j) {
      if (lost(i, j) < 0 || replacement(i, j) < 0) {
        std::ostringstream os;
        os << "negative repair entry at (" << i << "," << j
           << "): lost = " << lost(i, j)
           << ", replacement = " << replacement(i, j);
        return invalid(os.str());
      }
      if (lost(i, j) > original(i, j)) {
        std::ostringstream os;
        os << "lost(" << i << "," << j << ") = " << lost(i, j)
           << " exceeds the lease's " << original(i, j) << " VMs there\n"
           << dump_matrix("original", original) << "\n"
           << dump_matrix("lost", lost);
        return invalid(os.str());
      }
      if (lost(i, j) > 0 && !failed[i]) {
        std::ostringstream os;
        os << "lost VMs reported on live node " << i << " (type " << j << ")";
        return invalid(os.str());
      }
      if (replacement(i, j) > 0 && failed[i]) {
        std::ostringstream os;
        os << "replacement VMs placed on failed node " << i << " (type " << j
           << ")";
        return invalid(os.str());
      }
    }
  }
  for (std::size_t j = 0; j < original.cols(); ++j) {
    int lost_j = 0;
    int repl_j = 0;
    for (std::size_t i = 0; i < original.rows(); ++i) {
      lost_j += lost(i, j);
      repl_j += replacement(i, j);
    }
    if (repl_j > lost_j || (full_repair && repl_j != lost_j)) {
      std::ostringstream os;
      os << "repair of type " << j << " replaces " << repl_j << " of " << lost_j
         << " lost VMs (" << (full_repair ? "full" : "partial")
         << " repair wants " << (full_repair ? "==" : "<=") << ")\n"
         << dump_matrix("lost", lost) << "\n"
         << dump_matrix("replacement", replacement);
      return invalid(os.str());
    }
  }
  return valid();
}

ValidationResult validate_exact_cover(
    const std::vector<std::uint64_t>& expected,
    const std::vector<std::uint64_t>& got, const std::string& what) {
  std::map<std::uint64_t, int> balance;  // +1 per expected, -1 per got
  for (std::uint64_t id : expected) ++balance[id];
  for (std::uint64_t id : got) --balance[id];
  std::vector<std::uint64_t> missing;
  std::vector<std::uint64_t> extra;
  for (const auto& [id, count] : balance) {
    for (int k = 0; k < count; ++k) missing.push_back(id);
    for (int k = 0; k < -count; ++k) extra.push_back(id);
  }
  if (missing.empty() && extra.empty()) return valid();
  std::ostringstream os;
  os << what << ": not an exact cover (" << expected.size() << " expected, "
     << got.size() << " got)";
  auto dump_ids = [&os](const char* label,
                        const std::vector<std::uint64_t>& ids) {
    if (ids.empty()) return;
    os << "\n  " << label << ":";
    for (std::uint64_t id : ids) os << " " << id;
  };
  dump_ids("missing", missing);
  dump_ids("duplicated or unexpected", extra);
  return invalid(os.str());
}

ValidationResult validate_nondecreasing(const std::vector<double>& timestamps,
                                        const std::string& what) {
  for (std::size_t i = 1; i < timestamps.size(); ++i) {
    if (timestamps[i] < timestamps[i - 1]) {
      std::ostringstream os;
      os << what << " went backwards at index " << i << ": "
         << timestamps[i - 1] << " -> " << timestamps[i];
      return invalid(os.str());
    }
  }
  return valid();
}

ValidationResult validate_migration_conservation(const util::IntMatrix& before,
                                                 const util::IntMatrix& after,
                                                 std::size_t from,
                                                 std::size_t to,
                                                 std::size_t type) {
  if (after.rows() != before.rows() || after.cols() != before.cols()) {
    return invalid("migration matrices disagree in shape");
  }
  if (from >= before.rows() || to >= before.rows() || type >= before.cols()) {
    std::ostringstream os;
    os << "migration endpoints out of range: from = " << from << ", to = "
       << to << ", type = " << type << " on a " << before.rows() << "x"
       << before.cols() << " allocation";
    return invalid(os.str());
  }
  if (from == to) {
    std::ostringstream os;
    os << "migration moves a VM from node " << from << " to itself";
    return invalid(os.str());
  }
  for (std::size_t i = 0; i < before.rows(); ++i) {
    for (std::size_t j = 0; j < before.cols(); ++j) {
      int expected = before(i, j);
      if (i == from && j == type) expected -= 1;
      if (i == to && j == type) expected += 1;
      if (after(i, j) != expected) {
        std::ostringstream os;
        os << "migration of one type-" << type << " VM " << from << " -> "
           << to << " changed (" << i << "," << j << ") from " << before(i, j)
           << " to " << after(i, j) << " (expected " << expected << ")\n"
           << dump_matrix("before", before) << "\n"
           << dump_matrix("after", after);
        return invalid(os.str());
      }
      if (after(i, j) < 0) {
        std::ostringstream os;
        os << "migration left a negative count at (" << i << "," << j
           << "): " << after(i, j) << "\n" << dump_matrix("after", after);
        return invalid(os.str());
      }
    }
  }
  return valid();
}

}  // namespace vcopt::check
