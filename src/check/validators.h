// Domain validators for the paper's feasibility constraints (Def. 1/2/4) and
// the bookkeeping invariants of the surrounding system.  Each validator
// returns a ValidationResult whose message, on failure, names the violated
// constraint and dumps the offending matrices/state, so a VCOPT_VALIDATE
// failure is diagnosable from the abort message alone.
//
// Validators are plain functions over matrices/vectors (no dependency on the
// cluster/solver layers), so every subsystem can call them; they are also
// unit-tested directly, independent of whether checks are compiled in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "check/check.h"
#include "util/matrix.h"

namespace vcopt::check {

/// Outcome of a validator: `ok` plus a multi-line diagnostic when not.
struct ValidationResult {
  bool ok = true;
  std::string message;
  explicit operator bool() const { return ok; }
};

ValidationResult valid();
ValidationResult invalid(std::string message);

/// Definition 2 feasibility of an allocation C against a request R and
/// remaining capacity L:  sum_i C_ij == R_j,  0 <= C_ij <= L_ij.
ValidationResult validate_allocation(const util::IntMatrix& counts,
                                     const std::vector<int>& requested,
                                     const util::IntMatrix& remaining);

/// Capacity-fit half of Definition 2 on its own: 0 <= C_ij <= L_ij.  Used
/// where C aggregates several requests (GSD's shared-capacity coupling).
ValidationResult validate_fits(const util::IntMatrix& counts,
                               const util::IntMatrix& limit);

/// Distance of C when `central` is forced as the central node:
/// sum_i (sum_j C_ij) * D(i, central).  Independent of cluster::Allocation
/// so it can cross-check it.
double recompute_distance_from(const util::IntMatrix& counts,
                               std::size_t central,
                               const util::DoubleMatrix& dist);

/// Definition 1: DC(C) = min_k recompute_distance_from(C, k, D).
double recompute_dc(const util::IntMatrix& counts,
                    const util::DoubleMatrix& dist);

/// The solver-reported (central, distance) pair must match an independent
/// recomputation of the forced-central distance.
ValidationResult validate_reported_distance(const util::IntMatrix& counts,
                                            const util::DoubleMatrix& dist,
                                            std::size_t central,
                                            double reported,
                                            double tol = 1e-6);

/// Stronger form for exact solvers: the reported distance must equal DC(C),
/// i.e. the reported central node must be optimal for the allocation.
ValidationResult validate_dc_optimal(const util::IntMatrix& counts,
                                     const util::DoubleMatrix& dist,
                                     double reported, double tol = 1e-6);

/// No NaN/Inf anywhere (simplex tableaus, solution vectors, distances).
ValidationResult validate_finite(const std::vector<double>& values,
                                 const std::string& what);
ValidationResult validate_finite(const util::DoubleMatrix& m,
                                 const std::string& what);

/// Inventory conservation: allocated + remaining == max and
/// 0 <= allocated_ij <= max_ij everywhere.  (A drained node reports less
/// remaining than max - allocated, so pass the undrained remaining matrix.)
ValidationResult validate_capacity_conservation(
    const util::IntMatrix& allocated, const util::IntMatrix& remaining,
    const util::IntMatrix& max_capacity);

/// Event/timeline timestamps must be non-decreasing.
ValidationResult validate_nondecreasing(const std::vector<double>& timestamps,
                                        const std::string& what);

/// Exact-cover reconciliation: `got` must contain every id in `expected`
/// exactly once and nothing else (order-insensitive).  On failure the
/// diagnostic lists the missing, duplicated and unexpected ids.  Used for
/// the service's journal/grant reconciliation: every accepted seq ends in
/// exactly one outcome — no lost requests, no duplicated decisions.
ValidationResult validate_exact_cover(const std::vector<std::uint64_t>& expected,
                                      const std::vector<std::uint64_t>& got,
                                      const std::string& what);

/// Repair conservation after a node failure: `lost` must be the slice of
/// `original` hosted on failed nodes (lost <= original entrywise, with
/// lost(i,j) > 0 only where failed[i]); `replacement` may only land on live
/// nodes; and per VM type the replacement never exceeds what was lost —
/// with exact equality when `full_repair`, so the repaired allocation
/// original - lost + replacement conserves the per-type totals of the lease.
ValidationResult validate_repair_conservation(const util::IntMatrix& original,
                                              const util::IntMatrix& lost,
                                              const util::IntMatrix& replacement,
                                              const std::vector<bool>& failed,
                                              bool full_repair);

/// Live-migration conservation: committing one VM move must change the
/// lease allocation by exactly -1 at (from, type) and +1 at (to, type),
/// leave every other entry untouched, keep all entries non-negative, and
/// preserve the per-type totals (a migration relocates a VM, it never
/// creates or destroys one).
ValidationResult validate_migration_conservation(const util::IntMatrix& before,
                                                 const util::IntMatrix& after,
                                                 std::size_t from,
                                                 std::size_t to,
                                                 std::size_t type);

}  // namespace vcopt::check
