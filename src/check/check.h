// vcopt::check — invariant-checking macros for the whole codebase.
//
// Three macros with identical mechanics but distinct intent:
//   VCOPT_ASSERT(cond)     precondition / argument contract at API boundaries
//   VCOPT_DCHECK(cond)     cheap internal sanity check on a hot path
//   VCOPT_INVARIANT(cond)  structural invariant at a phase boundary
// plus
//   VCOPT_VALIDATE(expr)   runs a domain validator (see check/validators.h)
//                          returning a {ok, message} result and aborts with
//                          the validator's diagnostic when it reports failure.
//
// All four are gated by VCOPT_ENABLE_CHECKS.  When the macro is not defined
// on the command line it defaults to ON in Debug builds (no NDEBUG) and OFF
// otherwise, matching classic assert().  The CMake cache variable
// VCOPT_ENABLE_CHECKS=ON/OFF forces it either way for every target.
//
// When OFF, the condition / validator expression still has to compile (so
// checks cannot rot) but is guaranteed NOT to be evaluated: the expansion is
// `true || (...)` for conditions and `if (false) (...)` for validators, both
// of which the optimiser deletes entirely — zero runtime cost.
//
// Extra context can be streamed onto any failing check and is printed with
// the failure.  Matrices (util::Matrix has operator<<), scalars and strings
// all work:
//
//   VCOPT_DCHECK(r < rows_) << "row " << r << " of " << rows_;
//   VCOPT_INVARIANT(gain >= 0) << "Theorem-2 swap regressed:\n" << alloc;
//
// A failing check prints "<file>:<line>: <KIND> failed: <condition><context>"
// to stderr in a single write and calls std::abort(), so gtest death tests
// can match the message and production cores carry the diagnostic.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#if !defined(VCOPT_ENABLE_CHECKS)
#if defined(NDEBUG)
#define VCOPT_ENABLE_CHECKS 0
#else
#define VCOPT_ENABLE_CHECKS 1
#endif
#endif

namespace vcopt::check::detail {

/// Accumulates the failure message; the destructor (end of the full check
/// expression, once all context has been streamed) emits it and aborts.
class CheckFailure {
 public:
  CheckFailure(const char* kind, const char* condition, const char* file,
               int line) {
    os_ << file << ":" << line << ": " << kind << " failed: " << condition;
  }
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;
  ~CheckFailure() {
    os_ << "\n";
    const std::string msg = os_.str();
    std::fwrite(msg.data(), 1, msg.size(), stderr);
    std::fflush(stderr);
    std::abort();
  }

  std::ostream& stream() { return os_; }

 private:
  std::ostringstream os_;
};

/// Makes the whole check expression void so it can sit inside a ternary
/// (operator& binds looser than operator<<, so streamed context attaches to
/// the CheckFailure first).
struct Voidify {
  void operator&(std::ostream&) const {}
};

/// Swallows streamed context when checks are compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};
struct NullVoidify {
  // Const ref: binds both the bare `NullStream()` temporary (no streamed
  // context) and the lvalue returned by a chained `operator<<`.
  void operator&(const NullStream&) const {}
};

}  // namespace vcopt::check::detail

// Active: evaluate the condition once; on failure build and emit the
// diagnostic, then abort.  Trailing `<< context` lands in the false branch.
#define VCOPT_CHECK_ON_(kind, cond)                                        \
  (static_cast<bool>(cond))                                                \
      ? (void)0                                                            \
      : ::vcopt::check::detail::Voidify() &                                \
            ::vcopt::check::detail::CheckFailure(kind, #cond, __FILE__,    \
                                                 __LINE__)                 \
                .stream()

// Disabled: `true || cond` short-circuits, so the condition compiles but is
// never evaluated and the optimiser removes the whole statement.
#define VCOPT_CHECK_OFF_(cond)                    \
  (true || static_cast<bool>(cond))               \
      ? (void)0                                   \
      : ::vcopt::check::detail::NullVoidify() &   \
            ::vcopt::check::detail::NullStream()

#if VCOPT_ENABLE_CHECKS

#define VCOPT_ASSERT(cond) VCOPT_CHECK_ON_("VCOPT_ASSERT", cond)
#define VCOPT_DCHECK(cond) VCOPT_CHECK_ON_("VCOPT_DCHECK", cond)
#define VCOPT_INVARIANT(cond) VCOPT_CHECK_ON_("VCOPT_INVARIANT", cond)

#define VCOPT_VALIDATE(expr)                                               \
  do {                                                                     \
    const auto vcopt_validation_result_ = (expr);                          \
    if (!vcopt_validation_result_.ok) {                                    \
      ::vcopt::check::detail::CheckFailure("VCOPT_VALIDATE", #expr,        \
                                           __FILE__, __LINE__)             \
              .stream()                                                    \
          << "\n"                                                          \
          << vcopt_validation_result_.message;                             \
    }                                                                      \
  } while (false)

#else  // !VCOPT_ENABLE_CHECKS

#define VCOPT_ASSERT(cond) VCOPT_CHECK_OFF_(cond)
#define VCOPT_DCHECK(cond) VCOPT_CHECK_OFF_(cond)
#define VCOPT_INVARIANT(cond) VCOPT_CHECK_OFF_(cond)

// The validator call compiles (no rot) but the branch is dead, so it is
// never evaluated — validators can be arbitrarily expensive.
#define VCOPT_VALIDATE(expr) \
  do {                       \
    if (false) {             \
      (void)(expr);          \
    }                        \
  } while (false)

#endif  // VCOPT_ENABLE_CHECKS
