// vcopt::rebalance — the continuous self-healing rebalancer the ROADMAP
// names: a background actor that closes the loop from telemetry to live VM
// migration.  The shape follows the collect -> decide -> migrate cycle of
// dynamic VM schedulers:
//
//     obs::Recorder (cluster/lease/dc trajectories, written by
//     cluster::ClusterSampler)                      --- collect ---.
//                                                                  v
//     drift detection (trajectory ratio + SloTracker          [ decide ]
//     objective on DC-per-VM)                                      |
//                                                                  v
//     placement::consolidate_budgeted (Theorem-2 moves       [ migrate ]
//     charged a data-movement cost)                                |
//                                                                  v
//     cluster::Cloud::begin/commit/rollback_migration  (two-phase, with
//     conservation checks) ... back into the sampler's next sample.
//
// The collect step reads ONLY recorded telemetry — the rebalancer never
// re-scans the cloud to find drift, so its trigger behaviour is exactly
// what an operator sees on the dashboard.  The decide step treats each
// migration as an economic decision: a move is planned only when its DC
// gain exceeds a data-movement cost modeled from the VM's memory size and
// the lease's shuffle traffic (VM count as proxy).
//
// Robustness rails (the headline):
//   * two-phase reserve -> move -> commit per migration, rolled back when a
//     node fails mid-copy (Cloud::commit_migration re-validates the world);
//   * a per-round migration budget (max_moves_per_round) and per-lease
//     cooldowns, so the rebalancer is rate-limited by construction;
//   * exponential-backoff retry (capped, deterministic jitter) on transient
//     failures — destination down, slot not yet free;
//   * an explicit degradation ladder per round:
//       kRebalanced -> kPartial -> kDeferred -> kDisabled
//     an unhealthy cluster (failed nodes present) defers instead of making
//     things worse, and too many consecutive bad rounds disable the loop
//     entirely until an operator reset().
//
// Determinism: ticks ride sim::PeriodicTicker on the shared EventQueue,
// retry jitter comes from a seeded util::Rng, and every container iterated
// is ordered — a (trace, profile, seed) triple replays the identical
// migration transcript byte for byte.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cloud.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "placement/migration.h"
#include "sim/event_queue.h"
#include "sim/periodic.h"
#include "util/rng.h"

namespace vcopt::rebalance {

/// Economic model of one live migration (Opposites-Attract style: the gain
/// must beat the cost of moving the data).
struct MigrationCostModel {
  /// DC units charged per GB of the VM type's memory (the copy itself).
  double cost_per_gb = 0.005;
  /// DC units charged per VM in the lease: a proxy for the shuffle traffic
  /// the migration disturbs while the cluster is running.
  double shuffle_cost_factor = 0.02;
  /// Live-copy duration: seconds_per_gb * memory_gb, floored at
  /// min_duration.  The commit fires this long after the reserve.
  double seconds_per_gb = 0.02;
  double min_duration = 0.25;
};

/// Cost (DC units) of migrating one VM of `type` out of a lease currently
/// holding `lease_vms` VMs.
double migration_cost(const cluster::VmType& type, int lease_vms,
                      const MigrationCostModel& model);
/// Simulated duration of the live copy for one VM of `type`.
double migration_duration(const cluster::VmType& type,
                          const MigrationCostModel& model);

struct RebalancePolicy {
  double tick_period = 10.0;          ///< seconds between rounds
  std::size_t max_moves_per_round = 4;  ///< migration budget per round
  double lease_cooldown = 20.0;       ///< seconds a migrated lease is left alone
  /// A lease has drifted when its recorded DC trajectory satisfies
  /// last > drift_ratio * min (the lease has been measurably tighter).
  double drift_ratio = 1.10;
  double min_net_gain = 1e-6;         ///< accept moves with gain - cost above this
  MigrationCostModel cost;
  // Retry rail: transient failures (destination down, slot not yet free)
  // retry with capped exponential backoff and deterministic jitter.
  int max_retries = 3;
  double retry_backoff_initial = 1.0;
  double retry_backoff_factor = 2.0;
  double retry_backoff_max = 30.0;
  double retry_jitter = 0.25;
  /// Health gate: with failed nodes present a round defers outright.
  bool defer_on_failed_nodes = true;
  /// Consecutive deferred rounds before the loop disables itself.
  int disable_after_bad_rounds = 8;
  // SLO objective on mean DC-per-VM, declared as "rebalance/dc_per_vm":
  // while it alerts, leases whose DC-per-VM exceeds the threshold are
  // candidates even when their own trajectory ratio looks flat (a cluster
  // placed badly from the start has no "tighter past" to drift from).
  double dc_per_vm_threshold = 4.0;
  double dc_per_vm_objective = 0.25;
};

/// Degradation ladder of one round.
enum class RoundStatus {
  kRebalanced,  ///< every planned move committed (or nothing needed moving)
  kPartial,     ///< some moves committed, some failed terminally
  kDeferred,    ///< unhealthy cluster, or no planned move survived
  kDisabled,    ///< the loop shut itself off (marker round at transition)
};

const char* to_string(RoundStatus s);

/// One migration attempt chain, finalized when it commits or exhausts its
/// retries.
struct MigrationRecord {
  std::uint64_t round = 0;
  cluster::LeaseId lease = 0;
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t type = 0;
  double gain = 0;       ///< DC gain the planner predicted
  double cost = 0;       ///< charged data-movement cost
  double started_at = 0;
  double finished_at = 0;
  bool committed = false;
  int attempts = 1;      ///< begin attempts consumed (1 = first try)
};

/// One collect/decide/migrate round.
struct RoundRecord {
  std::uint64_t round = 0;
  double time = 0;
  RoundStatus status = RoundStatus::kDeferred;
  std::size_t candidates = 0;   ///< drifted leases considered
  std::size_t planned = 0;      ///< moves the decide step produced
  std::size_t committed = 0;
  std::size_t rolled_back = 0;  ///< commit-time rollbacks (incl. retried ones)
  double net_gain = 0;          ///< sum of (gain - cost) over committed moves
};

/// A drifted lease the collect step surfaced.
struct DriftCandidate {
  cluster::LeaseId lease = 0;
  double drift = 0;          ///< last - min of the recorded DC trajectory
  double dc_per_vm = 0;      ///< last DC divided by current VM count
};

/// One move the decide step planned (lease + Theorem-2 relocation + economics).
struct PlannedMove {
  cluster::LeaseId lease = 0;
  placement::Migration move;
  double gain = 0;
  double cost = 0;
};

/// Collect step, reusable without a Rebalancer (the service's inline
/// rebalance pass shares it): scans the recorded `cluster/lease/dc` series
/// of every live lease and returns the drifted ones, ordered by drift
/// descending (ties by lease id).  `slo_hot` widens the net to leases whose
/// DC-per-VM exceeds `policy.dc_per_vm_threshold`.  Leases without recorded
/// telemetry are never candidates — the collect step reads the dashboard,
/// it does not re-scan the cloud.
std::vector<DriftCandidate> collect_drift(const cluster::Cloud& cloud,
                                          obs::Recorder& recorder,
                                          const RebalancePolicy& policy,
                                          bool slo_hot);

/// Decide step, also reusable: plans up to `budget` budgeted Theorem-2
/// moves across `candidates` (in order) against the cloud's current
/// reservation-aware remaining capacity.  Pure apart from reading the
/// cloud; applying the moves is the caller's business.
std::vector<PlannedMove> plan_moves(const cluster::Cloud& cloud,
                                    const std::vector<DriftCandidate>& candidates,
                                    const RebalancePolicy& policy,
                                    std::size_t budget);

/// The background rebalancer: one instance per simulation/driver, ticking on
/// the shared event queue.  Not thread-safe — it lives on the sim's
/// single-threaded event loop (the service uses the reusable steps above
/// under its own lock instead).
class Rebalancer {
 public:
  /// `recorder` is the telemetry the collect step reads (must be enabled to
  /// ever find drift) and receives the rebalance/* series this writes.  The
  /// optional `slo` gains a "rebalance/dc_per_vm" objective (declared on
  /// first use) fed once per tick.  All references must outlive the
  /// rebalancer.
  Rebalancer(cluster::Cloud& cloud, sim::EventQueue& queue,
             obs::Recorder& recorder, RebalancePolicy policy = {},
             std::uint64_t seed = 1, obs::SloTracker* slo = nullptr);

  /// Schedules periodic ticks (first at now + tick_period) until `horizon`.
  void arm(double horizon);

  /// One collect/decide/migrate round, callable directly (tests) or fired
  /// by the armed ticker.
  void tick();

  /// Re-arms a disabled loop (clears the consecutive-bad-round counter).
  void reset();

  bool disabled() const { return disabled_; }
  std::size_t inflight_count() const { return inflight_per_lease_.size(); }
  const std::vector<RoundRecord>& rounds() const { return rounds_; }
  const std::vector<MigrationRecord>& migrations() const { return migrations_; }
  const RebalancePolicy& policy() const { return policy_; }

  /// One line per finalized migration and round, deterministic — the CI
  /// soak diffs two runs' transcripts to prove replay determinism.
  std::string transcript() const;
  std::string describe() const;

 private:
  struct OpenRound {
    RoundRecord record;
    std::size_t outstanding = 0;  ///< moves not yet finalized
  };

  void feed_telemetry(double now);
  void start_move(std::uint64_t round, const PlannedMove& mv, int attempt,
                  double first_started_at);
  void retry_or_fail(std::uint64_t round, const PlannedMove& mv, int attempt,
                     double first_started_at);
  void finish_move(std::uint64_t round, const PlannedMove& mv, int attempts,
                   double first_started_at, bool committed);
  void resolve_move(std::uint64_t round);
  void finalize_round(RoundRecord record);

  cluster::Cloud& cloud_;
  sim::EventQueue& queue_;
  obs::Recorder& recorder_;
  RebalancePolicy policy_;
  obs::SloTracker* slo_;
  util::Rng rng_;
  std::optional<sim::PeriodicTicker> ticker_;  ///< built by arm()

  bool disabled_ = false;
  int consecutive_bad_ = 0;
  std::uint64_t round_counter_ = 0;
  std::map<std::uint64_t, OpenRound> open_rounds_;
  std::map<cluster::LeaseId, int> inflight_per_lease_;
  std::map<cluster::LeaseId, double> cooldown_until_;
  std::vector<RoundRecord> rounds_;
  std::vector<MigrationRecord> migrations_;
};

}  // namespace vcopt::rebalance
