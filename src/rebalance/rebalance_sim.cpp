#include "rebalance/rebalance_sim.h"

#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace vcopt::rebalance {

RebalanceSimResult run_rebalance_sim(
    cluster::Cloud& cloud, std::unique_ptr<placement::PlacementPolicy> policy,
    const std::vector<cluster::TimedRequest>& trace,
    const fault::FaultProfile& profile, const RebalanceSimOptions& options) {
  VCOPT_TRACE_SPAN("rebalance/rebalance_sim");
  if (options.fault.recorder == nullptr) {
    throw std::invalid_argument(
        "run_rebalance_sim: a recorder is required (the rebalancer triggers "
        "off recorded telemetry)");
  }

  // The rebalancer is created inside the attach hook (the queue only exists
  // there) but owned out here so its records outlive the run.
  std::unique_ptr<Rebalancer> rebalancer;
  fault::FaultSimOptions fo = options.fault;
  fo.attach = [&](sim::EventQueue& queue, double horizon) {
    rebalancer = std::make_unique<Rebalancer>(
        cloud, queue, *options.fault.recorder, options.policy, options.seed,
        options.fault.slo);
    rebalancer->arm(horizon);
  };

  RebalanceSimResult out;
  out.fault = fault::run_fault_sim(cloud, std::move(policy), trace, profile, fo);

  if (rebalancer) {  // absent only if the sim never invoked attach
    out.rounds = rebalancer->rounds();
    out.migrations = rebalancer->migrations();
    out.disabled = rebalancer->disabled();
    out.transcript = rebalancer->transcript();
    for (const MigrationRecord& m : out.migrations) {
      if (m.committed) {
        ++out.migrations_committed;
        out.net_gain += m.gain - m.cost;
      } else {
        ++out.migrations_failed;
      }
    }
    for (const RoundRecord& r : out.rounds) {
      if (r.status == RoundStatus::kDeferred) ++out.rounds_deferred;
    }
  }
  return out;
}

}  // namespace vcopt::rebalance
