// Closed-loop recovery simulation: run_fault_sim's churn-plus-failures
// story with a Rebalancer attached to the same event queue.  The fault
// injector tears placements apart, the recovery ladder puts VMs back
// wherever capacity survives, and the rebalancer then walks the cluster
// back toward tight placements under its migration budget — the full loop
// the ext_rebalance_soak gate measures.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fault/fault_sim.h"
#include "rebalance/rebalancer.h"

namespace vcopt::rebalance {

struct RebalanceSimOptions {
  /// Underlying fault-sim wiring.  `fault.recorder` is REQUIRED — the
  /// rebalancer triggers off recorded telemetry, so without a recorder it
  /// would simply never act (run_rebalance_sim throws instead of running a
  /// silently inert loop).
  fault::FaultSimOptions fault;
  RebalancePolicy policy;
  /// Seed for the rebalancer's retry jitter (independent of the fault
  /// profile's seed so storm schedule and retry timing decouple).
  std::uint64_t seed = 1;
};

struct RebalanceSimResult {
  fault::FaultSimResult fault;  ///< the churn + failure + repair story
  // The rebalance story, harvested from the attached Rebalancer.
  std::vector<RoundRecord> rounds;
  std::vector<MigrationRecord> migrations;
  std::size_t migrations_committed = 0;
  std::size_t migrations_failed = 0;  ///< terminal failures after retries
  std::size_t rounds_deferred = 0;
  double net_gain = 0;  ///< sum of committed gain - cost
  bool disabled = false;
  /// Deterministic one-line-per-event transcript (CI diffs two runs).
  std::string transcript;
};

/// Runs the fault sim with a rebalancer armed at the profile's resolved
/// horizon.  Throws std::invalid_argument when options.fault.recorder is
/// null.  The cloud is mutated, as in run_fault_sim.
RebalanceSimResult run_rebalance_sim(
    cluster::Cloud& cloud, std::unique_ptr<placement::PlacementPolicy> policy,
    const std::vector<cluster::TimedRequest>& trace,
    const fault::FaultProfile& profile, const RebalanceSimOptions& options);

}  // namespace vcopt::rebalance
