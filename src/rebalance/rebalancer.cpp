#include "rebalance/rebalancer.h"

#include <algorithm>
#include <sstream>

#include "check/check.h"
#include "obs/metrics.h"
#include "util/stats.h"

namespace vcopt::rebalance {

namespace {

constexpr double kEps = 1e-9;
constexpr char kDcPerVmSlo[] = "rebalance/dc_per_vm";

obs::Counter& counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name);
}

obs::HistogramMetric& gain_histogram() {
  return obs::MetricsRegistry::global().histogram(
      "rebalance/migration_gain",
      obs::MetricsRegistry::exponential_buckets(0.01, 2.0, 12));
}

}  // namespace

const char* to_string(RoundStatus s) {
  switch (s) {
    case RoundStatus::kRebalanced: return "rebalanced";
    case RoundStatus::kPartial: return "partial";
    case RoundStatus::kDeferred: return "deferred";
    case RoundStatus::kDisabled: return "disabled";
  }
  return "unknown";
}

double migration_cost(const cluster::VmType& type, int lease_vms,
                      const MigrationCostModel& model) {
  return model.cost_per_gb * type.memory_gb +
         model.shuffle_cost_factor * static_cast<double>(lease_vms);
}

double migration_duration(const cluster::VmType& type,
                          const MigrationCostModel& model) {
  return std::max(model.min_duration, model.seconds_per_gb * type.memory_gb);
}

std::vector<DriftCandidate> collect_drift(const cluster::Cloud& cloud,
                                          obs::Recorder& recorder,
                                          const RebalancePolicy& policy,
                                          bool slo_hot) {
  std::vector<DriftCandidate> out;
  for (const cluster::LeaseId id : cloud.lease_ids()) {
    const int vms = cloud.lease_allocation(id).total_vms();
    if (vms <= 0) continue;
    const obs::Labels labels{{"lease", std::to_string(id)}};
    const obs::TimeSeries::Summary s =
        recorder.series("cluster/lease/dc", labels).summarize();
    if (s.count == 0) continue;  // no telemetry -> never a candidate
    const double dc_per_vm = s.last / static_cast<double>(vms);
    const bool drifted = s.last > policy.drift_ratio * s.min + kEps;
    const bool hot = slo_hot && dc_per_vm > policy.dc_per_vm_threshold;
    if (!drifted && !hot) continue;
    out.push_back(DriftCandidate{id, s.last - s.min, dc_per_vm});
  }
  std::sort(out.begin(), out.end(),
            [](const DriftCandidate& a, const DriftCandidate& b) {
              if (a.drift != b.drift) return a.drift > b.drift;
              return a.lease < b.lease;
            });
  return out;
}

std::vector<PlannedMove> plan_moves(const cluster::Cloud& cloud,
                                    const std::vector<DriftCandidate>& candidates,
                                    const RebalancePolicy& policy,
                                    std::size_t budget) {
  std::vector<PlannedMove> out;
  if (budget == 0) return out;
  // One shared remaining matrix across candidates: a slot promised to an
  // earlier lease's move is not offered to a later one.  Reservation-aware,
  // so in-flight migrations from previous rounds are already excluded.
  util::IntMatrix rem = cloud.remaining();
  const std::size_t types = cloud.type_count();
  for (const DriftCandidate& cand : candidates) {
    if (out.size() >= budget) break;
    if (!cloud.has_lease(cand.lease)) continue;
    placement::Placement p;
    p.allocation = cloud.lease_allocation(cand.lease);
    const int vms = p.allocation.total_vms();
    if (vms <= 0) continue;
    placement::BudgetedConsolidateOptions opts;
    opts.max_migrations = budget - out.size();
    opts.min_net_gain = policy.min_net_gain;
    opts.move_cost.resize(types);
    for (std::size_t j = 0; j < types; ++j) {
      opts.move_cost[j] = migration_cost(cloud.catalog()[j], vms, policy.cost);
    }
    const placement::BudgetedConsolidation plan = placement::consolidate_budgeted(
        p, rem, cloud.distance_matrix(), opts);
    for (const placement::BudgetedMove& mv : plan.moves) {
      out.push_back(PlannedMove{cand.lease, mv.move, mv.gain, mv.cost});
    }
  }
  return out;
}

Rebalancer::Rebalancer(cluster::Cloud& cloud, sim::EventQueue& queue,
                       obs::Recorder& recorder, RebalancePolicy policy,
                       std::uint64_t seed, obs::SloTracker* slo)
    : cloud_(cloud), queue_(queue), recorder_(recorder), policy_(policy),
      slo_(slo), rng_(seed) {
  if (slo_ != nullptr) {
    obs::SloSpec spec;
    spec.name = kDcPerVmSlo;
    spec.description = "mean DC per VM across live leases stays tight";
    spec.objective = policy_.dc_per_vm_objective;
    spec.threshold = policy_.dc_per_vm_threshold;
    slo_->declare(spec);  // find-or-create: an earlier declaration wins
  }
}

void Rebalancer::arm(double horizon) {
  if (ticker_) {
    ticker_->stop();
  }
  ticker_.emplace(queue_, policy_.tick_period, horizon, [this] { tick(); });
  ticker_->start();
}

void Rebalancer::reset() {
  disabled_ = false;
  consecutive_bad_ = 0;
  if (ticker_ && !ticker_->running()) {
    ticker_->start();
  }
}

void Rebalancer::feed_telemetry(double now) {
  double sum = 0;
  std::size_t n = 0;
  for (const cluster::LeaseId id : cloud_.lease_ids()) {
    const int vms = cloud_.lease_allocation(id).total_vms();
    if (vms <= 0) continue;
    const obs::Labels labels{{"lease", std::to_string(id)}};
    const obs::TimeSeries::Summary s =
        recorder_.series("cluster/lease/dc", labels).summarize();
    if (s.count == 0) continue;
    sum += s.last / static_cast<double>(vms);
    ++n;
  }
  if (n == 0) return;
  const double mean = sum / static_cast<double>(n);
  recorder_.series(kDcPerVmSlo).record(now, mean);
  if (slo_ != nullptr) {
    slo_->record_value(kDcPerVmSlo, now, mean);
  }
}

void Rebalancer::tick() {
  if (disabled_) return;
  const double now = queue_.now();
  feed_telemetry(now);

  RoundRecord rec;
  rec.round = ++round_counter_;
  rec.time = now;

  // Health gate: with failed nodes present the recovery ladder owns the
  // cluster; a rebalance round would chase capacity that is about to move.
  if (policy_.defer_on_failed_nodes && cloud_.inventory().failed_count() > 0) {
    rec.status = RoundStatus::kDeferred;
    finalize_round(rec);
    return;
  }

  const bool slo_hot = slo_ != nullptr && slo_->any_alerting(now);
  std::vector<DriftCandidate> candidates =
      collect_drift(cloud_, recorder_, policy_, slo_hot);
  // Rate-limit rails: leases with an in-flight move or inside their
  // cooldown window are left alone this round.
  candidates.erase(
      std::remove_if(candidates.begin(), candidates.end(),
                     [&](const DriftCandidate& c) {
                       if (inflight_per_lease_.count(c.lease) > 0) return true;
                       const auto it = cooldown_until_.find(c.lease);
                       return it != cooldown_until_.end() && it->second > now;
                     }),
      candidates.end());
  rec.candidates = candidates.size();

  const std::vector<PlannedMove> moves =
      plan_moves(cloud_, candidates, policy_, policy_.max_moves_per_round);
  rec.planned = moves.size();
  if (moves.empty()) {
    // Nothing drifted past the economic bar: the cluster is where the
    // rebalancer wants it.  A quiet round is a good round.
    rec.status = RoundStatus::kRebalanced;
    finalize_round(rec);
    return;
  }

  OpenRound& open = open_rounds_[rec.round];
  open.record = rec;
  open.outstanding = moves.size();
  for (const PlannedMove& mv : moves) {
    ++inflight_per_lease_[mv.lease];
    start_move(rec.round, mv, 1, now);
  }
}

void Rebalancer::start_move(std::uint64_t round, const PlannedMove& mv,
                            int attempt, double first_started_at) {
  if (!cloud_.has_lease(mv.lease)) {
    // The lease ended while the move waited (release or abandoned repair):
    // terminal, not worth a retry.
    finish_move(round, mv, attempt, first_started_at, false);
    return;
  }
  counter("rebalance/migrations_attempted").add(1);
  const std::uint64_t ticket = cloud_.begin_migration(
      mv.lease, mv.move.from_node, mv.move.to_node, mv.move.type);
  if (ticket == 0) {
    // Transient refusal (destination down/drained, slot not free, VM gone).
    retry_or_fail(round, mv, attempt, first_started_at);
    return;
  }
  const double duration =
      migration_duration(cloud_.catalog()[mv.move.type], policy_.cost);
  queue_.schedule_in(duration, [this, round, mv, attempt, first_started_at,
                                ticket] {
    if (cloud_.commit_migration(ticket)) {
      finish_move(round, mv, attempt, first_started_at, true);
      return;
    }
    // The world changed mid-copy (node failed, lease shrank/ended): the
    // commit rolled the reservation back; retry from scratch.
    counter("rebalance/migrations_rolled_back").add(1);
    const auto it = open_rounds_.find(round);
    VCOPT_DCHECK(it != open_rounds_.end());
    ++it->second.record.rolled_back;
    retry_or_fail(round, mv, attempt, first_started_at);
  });
}

void Rebalancer::retry_or_fail(std::uint64_t round, const PlannedMove& mv,
                               int attempt, double first_started_at) {
  if (attempt > policy_.max_retries) {
    finish_move(round, mv, attempt, first_started_at, false);
    return;
  }
  const double base = util::capped_exponential_backoff(
      policy_.retry_backoff_initial, policy_.retry_backoff_factor, attempt,
      policy_.retry_backoff_max);
  const double jitter =
      1.0 + policy_.retry_jitter * (2.0 * rng_.uniform01() - 1.0);
  const double delay =
      std::clamp(base * jitter, kEps, policy_.retry_backoff_max);
  queue_.schedule_in(delay, [this, round, mv, attempt, first_started_at] {
    start_move(round, mv, attempt + 1, first_started_at);
  });
}

void Rebalancer::finish_move(std::uint64_t round, const PlannedMove& mv,
                             int attempts, double first_started_at,
                             bool committed) {
  const double now = queue_.now();
  MigrationRecord rec;
  rec.round = round;
  rec.lease = mv.lease;
  rec.from = mv.move.from_node;
  rec.to = mv.move.to_node;
  rec.type = mv.move.type;
  rec.gain = mv.gain;
  rec.cost = mv.cost;
  rec.started_at = first_started_at;
  rec.finished_at = now;
  rec.committed = committed;
  rec.attempts = attempts;
  migrations_.push_back(rec);

  const auto lease_it = inflight_per_lease_.find(mv.lease);
  VCOPT_DCHECK(lease_it != inflight_per_lease_.end());
  if (--lease_it->second <= 0) {
    inflight_per_lease_.erase(lease_it);
  }

  const auto it = open_rounds_.find(round);
  VCOPT_DCHECK(it != open_rounds_.end());
  if (committed) {
    counter("rebalance/migrations_committed").add(1);
    gain_histogram().observe(mv.gain);
    cooldown_until_[mv.lease] = now + policy_.lease_cooldown;
    ++it->second.record.committed;
    it->second.record.net_gain += mv.gain - mv.cost;
  } else {
    counter("rebalance/migrations_failed").add(1);
  }
  resolve_move(round);
}

void Rebalancer::resolve_move(std::uint64_t round) {
  const auto it = open_rounds_.find(round);
  VCOPT_DCHECK(it != open_rounds_.end());
  if (--it->second.outstanding > 0) return;
  RoundRecord rec = it->second.record;
  open_rounds_.erase(it);
  if (rec.committed == rec.planned) {
    rec.status = RoundStatus::kRebalanced;
  } else if (rec.committed > 0) {
    rec.status = RoundStatus::kPartial;
  } else {
    rec.status = RoundStatus::kDeferred;
  }
  finalize_round(rec);
}

void Rebalancer::finalize_round(RoundRecord record) {
  counter("rebalance/rounds").add(1);
  if (record.status == RoundStatus::kDeferred) {
    counter("rebalance/rounds_deferred").add(1);
    ++consecutive_bad_;
  } else {
    consecutive_bad_ = 0;
  }
  recorder_.series("rebalance/round_net_gain")
      .record(queue_.now(), record.net_gain);
  rounds_.push_back(record);

  if (!disabled_ && consecutive_bad_ >= policy_.disable_after_bad_rounds) {
    // Bottom of the degradation ladder: stop making it worse.  A marker
    // round records the transition; reset() re-arms.
    disabled_ = true;
    if (ticker_) ticker_->stop();
    counter("rebalance/disabled").add(1);
    RoundRecord marker;
    marker.round = ++round_counter_;
    marker.time = queue_.now();
    marker.status = RoundStatus::kDisabled;
    rounds_.push_back(marker);
  }
}

std::string Rebalancer::transcript() const {
  std::ostringstream os;
  for (const RoundRecord& r : rounds_) {
    os << "round " << r.round << " t=" << r.time << " status="
       << to_string(r.status) << " candidates=" << r.candidates
       << " planned=" << r.planned << " committed=" << r.committed
       << " rolled_back=" << r.rolled_back << " net_gain=" << r.net_gain
       << "\n";
  }
  for (const MigrationRecord& m : migrations_) {
    os << "move round=" << m.round << " lease=" << m.lease << " " << m.from
       << "->" << m.to << " type=" << m.type << " gain=" << m.gain
       << " cost=" << m.cost << " attempts=" << m.attempts
       << " committed=" << (m.committed ? 1 : 0) << "\n";
  }
  return os.str();
}

std::string Rebalancer::describe() const {
  std::size_t committed = 0;
  std::size_t failed = 0;
  for (const MigrationRecord& m : migrations_) {
    if (m.committed) ++committed; else ++failed;
  }
  std::ostringstream os;
  os << "rebalancer: rounds=" << rounds_.size() << " migrations="
     << migrations_.size() << " committed=" << committed << " failed="
     << failed << " inflight=" << inflight_per_lease_.size()
     << (disabled_ ? " DISABLED" : "");
  return os.str();
}

}  // namespace vcopt::rebalance
