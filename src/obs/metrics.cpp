#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/mutex.h"
#include "util/table.h"

namespace vcopt::obs {

void Gauge::set(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  util::MutexLock lock(mu_);
  value_ = v;
  max_ = touched_ ? std::max(max_, v) : v;
  touched_ = true;
}

void Gauge::add(double delta) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  util::MutexLock lock(mu_);
  value_ += delta;
  max_ = touched_ ? std::max(max_, value_) : value_;
  touched_ = true;
}

double Gauge::value() const {
  util::MutexLock lock(mu_);
  return value_;
}

double Gauge::max() const {
  util::MutexLock lock(mu_);
  return max_;
}

HistogramMetric::HistogramMetric(const std::atomic<bool>* enabled,
                                 std::vector<double> bounds)
    : enabled_(enabled), bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("HistogramMetric: no bucket bounds");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("HistogramMetric: bounds must be ascending");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void HistogramMetric::observe(double x) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  util::MutexLock lock(mu_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  stats_.add(x);
}

std::size_t HistogramMetric::count() const {
  util::MutexLock lock(mu_);
  return stats_.count();
}

double HistogramMetric::quantile_locked(double p) const {
  const std::size_t n = stats_.count();
  if (n == 0) return 0;
  p = std::min(1.0, std::max(0.0, p));
  // Rank of the target sample (1-based), Prometheus-style: the smallest
  // cumulative count that covers fraction p of the population.
  const double target = p * static_cast<double>(n);
  double cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double prev = cumulative;
    cumulative += static_cast<double>(counts_[i]);
    if (cumulative < target || counts_[i] == 0) continue;
    // Bucket i spans (lower, upper]; interpolate linearly within it.  The
    // first bucket's lower edge and the overflow bucket's upper edge are
    // unknown, so substitute the observed min/max.
    const double lower = (i == 0) ? stats_.min() : bounds_[i - 1];
    const double upper = (i < bounds_.size()) ? bounds_[i] : stats_.max();
    const double frac = (target - prev) / static_cast<double>(counts_[i]);
    const double est = lower + (upper - lower) * frac;
    // Clamp to the observed range: bucket edges can lie outside the data.
    return std::min(stats_.max(), std::max(stats_.min(), est));
  }
  return stats_.max();
}

double HistogramMetric::quantile(double p) const {
  util::MutexLock lock(mu_);
  return quantile_locked(p);
}

double HistogramMetric::sum() const {
  util::MutexLock lock(mu_);
  return stats_.sum();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = [] {
    // Intentionally leaked process-lifetime singleton.
    auto* r = new MetricsRegistry();  // NOLINT(vcopt-raw-new)
    const char* env = std::getenv("VCOPT_METRICS");
    if (env != nullptr && env[0] != '\0' && std::string(env) != "0") {
      r->set_enabled(true);
    }
    return r;
  }();
  return *reg;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  util::MutexLock lock(mu_);
  auto& slot = counters_[name];
  // Private ctor: make_unique cannot be used here.
  if (!slot) slot.reset(new Counter(&enabled_));  // NOLINT(vcopt-raw-new)
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  util::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge(&enabled_));  // NOLINT(vcopt-raw-new)
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            std::vector<double> bounds) {
  util::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    auto* h = new HistogramMetric(  // NOLINT(vcopt-raw-new)
        &enabled_, std::move(bounds));
    slot.reset(h);
  }
  return *slot;
}

std::vector<double> MetricsRegistry::linear_buckets(double lo, double hi,
                                                    std::size_t n) {
  if (n == 0 || hi <= lo) {
    throw std::invalid_argument("linear_buckets: need n > 0 and hi > lo");
  }
  std::vector<double> out(n);
  const double width = (hi - lo) / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + width * static_cast<double>(i + 1);
  }
  return out;
}

std::vector<double> MetricsRegistry::exponential_buckets(double start,
                                                         double factor,
                                                         std::size_t n) {
  if (n == 0 || start <= 0 || factor <= 1) {
    throw std::invalid_argument(
        "exponential_buckets: need n > 0, start > 0, factor > 1");
  }
  std::vector<double> out(n);
  double b = start;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = b;
    b *= factor;
  }
  return out;
}

void MetricsRegistry::reset() {
  util::MutexLock lock(mu_);
  for (auto& [name, c] : counters_) {
    c->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : gauges_) {
    Gauge* gp = g.get();  // raw alias: the analysis sees through locals
    util::MutexLock glock(gp->mu_);
    gp->value_ = 0;
    gp->max_ = 0;
    gp->touched_ = false;
  }
  for (auto& [name, h] : histograms_) {
    HistogramMetric* hp = h.get();
    util::MutexLock hlock(hp->mu_);
    std::fill(hp->counts_.begin(), hp->counts_.end(), 0);
    hp->stats_ = util::RunningStats{};
  }
}

util::Json MetricsRegistry::snapshot_json() const {
  util::MutexLock lock(mu_);
  util::JsonObject counters;
  for (const auto& [name, c] : counters_) {
    counters[name] = util::Json(c->value());
  }
  util::JsonObject gauges;
  for (const auto& [name, g] : gauges_) {
    const Gauge* gp = g.get();
    util::MutexLock glock(gp->mu_);
    gauges[name] = util::Json(
        util::JsonObject{{"value", gp->value_}, {"max", gp->max_}});
  }
  util::JsonObject histograms;
  for (const auto& [name, h] : histograms_) {
    const HistogramMetric* hp = h.get();
    util::MutexLock hlock(hp->mu_);
    util::JsonArray buckets;
    for (std::size_t i = 0; i < hp->bounds_.size(); ++i) {
      buckets.push_back(util::Json(util::JsonObject{
          {"le", hp->bounds_[i]}, {"count", hp->counts_[i]}}));
    }
    buckets.push_back(util::Json(util::JsonObject{
        {"le", "inf"}, {"count", hp->counts_.back()}}));
    util::JsonObject entry{{"count", hp->stats_.count()},
                           {"sum", hp->stats_.sum()},
                           {"buckets", std::move(buckets)}};
    if (hp->stats_.count() > 0) {
      entry["mean"] = hp->stats_.mean();
      entry["min"] = hp->stats_.min();
      entry["max"] = hp->stats_.max();
      entry["stddev"] = hp->stats_.stddev();
      entry["p50"] = hp->quantile_locked(0.50);
      entry["p90"] = hp->quantile_locked(0.90);
      entry["p99"] = hp->quantile_locked(0.99);
    }
    histograms[name] = util::Json(std::move(entry));
  }
  return util::Json(util::JsonObject{{"counters", std::move(counters)},
                                     {"gauges", std::move(gauges)},
                                     {"histograms", std::move(histograms)}});
}

std::string MetricsRegistry::render_table() const {
  util::TableWriter t({"Metric", "Kind", "Value", "Detail"});
  util::MutexLock lock(mu_);
  for (const auto& [name, c] : counters_) {
    t.row().cell(name).cell("counter").cell(c->value()).cell("");
  }
  for (const auto& [name, g] : gauges_) {
    const Gauge* gp = g.get();
    util::MutexLock glock(gp->mu_);
    t.row().cell(name).cell("gauge").cell(gp->value_, 3).cell(
        "max=" + util::format_double(gp->max_, 3));
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramMetric* hp = h.get();
    util::MutexLock hlock(hp->mu_);
    std::string detail;
    if (hp->stats_.count() > 0) {
      detail = "mean=" + util::format_double(hp->stats_.mean(), 3) +
               " min=" + util::format_double(hp->stats_.min(), 3) +
               " max=" + util::format_double(hp->stats_.max(), 3);
    }
    t.row().cell(name).cell("histogram").cell(hp->stats_.count()).cell(detail);
  }
  std::ostringstream os;
  t.print(os);
  return os.str();
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << snapshot_json().dump(2) << "\n";
  return bool(out);
}

std::string prometheus_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

std::string prometheus_label_key(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

std::string prometheus_escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {
// Prometheus sample value: JSON number formatting is deterministic and
// round-trips doubles, which is what the golden-file test pins down.
std::string prom_num(double v) { return util::Json(v).dump(0); }
}  // namespace

std::string MetricsRegistry::prometheus_text() const {
  util::MutexLock lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    const std::string metric = prometheus_metric_name(name);
    out << "# TYPE " << metric << " counter\n";
    out << metric << ' ' << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const Gauge* gp = g.get();
    util::MutexLock glock(gp->mu_);
    const std::string metric = prometheus_metric_name(name);
    out << "# TYPE " << metric << " gauge\n";
    out << metric << ' ' << prom_num(gp->value_) << "\n";
    out << "# TYPE " << metric << "_max gauge\n";
    out << metric << "_max " << prom_num(gp->max_) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramMetric* hp = h.get();
    util::MutexLock hlock(hp->mu_);
    const std::string metric = prometheus_metric_name(name);
    out << "# TYPE " << metric << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hp->bounds_.size(); ++i) {
      cumulative += hp->counts_[i];
      out << metric << "_bucket{le=\"" << prom_num(hp->bounds_[i]) << "\"} "
          << cumulative << "\n";
    }
    cumulative += hp->counts_.back();
    out << metric << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    out << metric << "_sum " << prom_num(hp->stats_.sum()) << "\n";
    out << metric << "_count " << hp->stats_.count() << "\n";
  }
  return out.str();
}

namespace {
std::string g_sidecar_path;  // set once by register_metrics_sidecar
std::string g_sidecar_name;
}

bool write_metrics_sidecar_file(const MetricsRegistry& registry,
                                const std::string& path,
                                const std::string& bench_name) {
  std::ofstream out(path);
  if (!out) return false;
  util::JsonObject o;
  o["schema"] = "vcopt-metrics-sidecar/1";
  o["bench"] = bench_name;
  o["metrics"] = registry.snapshot_json();
  out << util::Json(std::move(o)).dump(2) << "\n";
  return bool(out);
}

void register_metrics_sidecar(const std::string& id) {
  if (!MetricsRegistry::global().enabled() || !g_sidecar_path.empty()) return;
  std::string slug;
  for (const char ch : id) {
    slug += (std::isalnum(static_cast<unsigned char>(ch)) != 0) ? ch : '_';
  }
  if (slug.empty()) slug = "bench";
  g_sidecar_path = slug + ".metrics.json";
  g_sidecar_name = id;
  std::atexit([] {
    write_metrics_sidecar_file(MetricsRegistry::global(), g_sidecar_path,
                               g_sidecar_name);
  });
}

}  // namespace vcopt::obs
