// Service-level-objective tracking with multi-window burn-rate alerts.
//
// Every SLO is an error-budget objective: out of the events recorded in a
// rolling window, at most `objective` fraction may be bad.  Value-style
// objectives (latency p99, DC-per-VM) reduce to the same form through a
// threshold: record_value() marks a sample bad when it exceeds
// `spec.threshold`, so "p99 latency below T" becomes "at most 1% of
// decisions slower than T" — the standard error-budget formulation.
//
// Burn rate is the classic SRE ratio: (bad fraction in window) / objective.
// Burn 1.0 spends the budget exactly at the sustainable pace; burn >= alert
// threshold over BOTH a short and a long rolling window raises the alert —
// the multi-window scheme that ignores one-sample blips (short window alone)
// without missing slow leaks (long window alone).
//
// Time is whatever clock the caller feeds in (simulated seconds for the
// sims, service-clock seconds for vcopt::service) — the tracker never reads
// a wall clock, so SLO evaluation is as deterministic as the run itself.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace vcopt::obs {

/// One declared objective.
struct SloSpec {
  std::string name;         ///< e.g. "service/shed_rate"
  std::string description;  ///< one line for dashboards
  /// Error budget: max allowed bad fraction of events in a window.
  double objective = 0.01;
  /// record_value() marks samples bad when value > threshold.  Unused by
  /// record_event() feeds.
  double threshold = 0;
  double short_window = 60;   ///< seconds (caller's clock)
  double long_window = 600;   ///< seconds; also the retention horizon
  double burn_alert = 2.0;    ///< alert when BOTH window burn rates >= this
  std::size_t min_events = 10;  ///< no alert below this many short-window events
};

/// Evaluated state of one SLO at an instant.
struct SloStatus {
  SloSpec spec;
  std::uint64_t total = 0;  ///< lifetime events
  std::uint64_t bad = 0;    ///< lifetime bad events
  std::uint64_t short_total = 0;
  std::uint64_t short_bad = 0;
  std::uint64_t long_total = 0;
  std::uint64_t long_bad = 0;
  double short_burn = 0;
  double long_burn = 0;
  bool alerting = false;
};

/// Tracker for a set of declared SLOs.  Thread-safe; cheap enough to stay
/// always-on (one mutex + deque push per event).  Each vcopt::service owns
/// one; the sims feed one passed through their options.
class SloTracker {
 public:
  SloTracker() = default;
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Registers an objective.  Re-declaring an existing name keeps the
  /// original spec (find-or-create, like the metrics registry).
  void declare(const SloSpec& spec);
  bool declared(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Records one good/bad event at time `t` on the caller's clock.  Unknown
  /// names throw std::invalid_argument (an undeclared SLO is a wiring bug).
  void record_event(const std::string& name, double t, bool good);
  /// Value feed: bad when value > spec.threshold.
  void record_value(const std::string& name, double t, double value);

  /// Evaluates every declared SLO over [now - window, now].
  std::vector<SloStatus> evaluate(double now) const;
  /// True when any SLO is alerting at `now`.
  bool any_alerting(double now) const;

  /// {"schema":"vcopt-slo/1","now":T,"slos":[{name,objective,...,alerting}]}
  util::Json snapshot_json(double now) const;

  void reset();

 private:
  struct Event {
    double t = 0;
    bool good = true;
  };
  struct Series {
    SloSpec spec;
    std::deque<Event> events;  ///< pruned to the long window
    std::uint64_t total = 0;
    std::uint64_t bad = 0;
    double max_t = 0;  ///< latest event time seen (prune horizon)
  };

  SloStatus evaluate_locked(const Series& s, double now) const
      VCOPT_REQUIRES(mu_);

  mutable util::Mutex mu_;
  std::map<std::string, Series> slos_ VCOPT_GUARDED_BY(mu_);
};

}  // namespace vcopt::obs
