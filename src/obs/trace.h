// Scoped-span tracer producing Chrome trace_event JSON (loadable in
// chrome://tracing and Perfetto).  Spans are RAII timers declared with
// VCOPT_TRACE_SPAN("subsystem/name"); they nest naturally per thread and
// cost one relaxed atomic load when tracing is disabled (the common case).
// The global tracer is switched on by VCOPT_TRACE=FILE (the trace is written
// to FILE at process exit) or programmatically (vcopt_cli --trace-out).
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace vcopt::obs {

/// One trace_event record.  ph is "B"/"E" for span begin/end (nesting is
/// explicit in the event order) or "X" for a complete event with a duration.
struct TraceEvent {
  std::string name;
  char ph = 'B';
  double ts = 0;   ///< microseconds since the tracer's epoch
  double dur = 0;  ///< microseconds; only meaningful for ph == 'X'
  int pid = 1;
  int tid = 1;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide tracer; enabled at startup when VCOPT_TRACE is set.
  static Tracer& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Span boundaries on the calling thread's lane (wall-clock timestamps).
  void begin(const char* name);
  void end(const char* name);
  /// Complete ("X") event with explicit coordinates — used to project
  /// simulated-time phases (pid 2) next to the wall-clock lanes (pid 1).
  void complete(const std::string& name, double ts_us, double dur_us,
                int pid = 1, int tid = 1);

  std::size_t event_count() const;
  std::vector<TraceEvent> events() const;
  void clear();

  /// Serialises the Chrome trace format: a JSON array of
  /// {name, ph, ts, dur?, pid, tid} objects.
  util::Json events_json() const;
  bool write_file(const std::string& path) const;

 private:
  double now_us() const;
  void push(TraceEvent ev);

  std::atomic<bool> enabled_{false};
  mutable util::Mutex mu_;
  std::vector<TraceEvent> events_ VCOPT_GUARDED_BY(mu_);
  long long epoch_ns_ = 0;  // written once in the ctor, read-only after
};

/// RAII span: records a "B" event on construction and the matching "E" on
/// destruction.  Does nothing (and stores nothing) while tracing is off.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Tracer::global().enabled()) {
      name_ = name;
      Tracer::global().begin(name);
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) Tracer::global().end(name_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
};

#define VCOPT_OBS_CONCAT_INNER(a, b) a##b
#define VCOPT_OBS_CONCAT(a, b) VCOPT_OBS_CONCAT_INNER(a, b)
/// Declares an anonymous scoped span covering the rest of the block.
#define VCOPT_TRACE_SPAN(name) \
  ::vcopt::obs::ScopedSpan VCOPT_OBS_CONCAT(vcopt_obs_span_, __LINE__) { name }

}  // namespace vcopt::obs
