// Thread-safe metrics registry: named counters, gauges and histograms with a
// stable `subsystem/name` naming scheme (see docs/observability.md).  All
// instruments are cheap no-ops while the owning registry is disabled, so the
// hot paths can stay instrumented unconditionally; the global registry is
// switched on by VCOPT_METRICS=1 or programmatically (vcopt_cli
// --metrics-out).  Snapshots serialise to JSON (util/json.h) and to an
// aligned text table (util/table.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/mutex.h"
#include "util/stats.h"
#include "util/thread_annotations.h"

namespace vcopt::obs {

class MetricsRegistry;

/// Monotonic event counter.  add() is lock-free (one relaxed atomic add).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge that also remembers the largest value ever set (peak
/// tracking, e.g. high-water queue depth).
class Gauge {
 public:
  void set(double v);
  void add(double delta);
  double value() const;
  double max() const;

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  mutable util::Mutex mu_;
  double value_ VCOPT_GUARDED_BY(mu_) = 0;
  double max_ VCOPT_GUARDED_BY(mu_) = 0;
  bool touched_ VCOPT_GUARDED_BY(mu_) = false;
};

/// Bucketed distribution plus Welford summary stats (util::RunningStats).
/// Bucket i counts samples <= bounds[i]; one implicit overflow bucket holds
/// the rest.  Construct bounds with MetricsRegistry::linear_buckets or
/// exponential_buckets.
class HistogramMetric {
 public:
  void observe(double x);
  std::size_t count() const;
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }

  /// Estimated quantile (p in [0,1]) from the bucket counts: linear
  /// interpolation inside the containing bucket, clamped to the observed
  /// [min, max] from the Welford stats so estimates never leave the data
  /// range.  Returns 0 with no samples.
  double quantile(double p) const;

 private:
  friend class MetricsRegistry;
  HistogramMetric(const std::atomic<bool>* enabled, std::vector<double> bounds);
  double quantile_locked(double p) const VCOPT_REQUIRES(mu_);
  const std::atomic<bool>* enabled_;
  mutable util::Mutex mu_;
  std::vector<double> bounds_;  // ascending upper bounds; immutable post-ctor
  std::vector<std::uint64_t> counts_ VCOPT_GUARDED_BY(mu_);  // +1 overflow
  util::RunningStats stats_ VCOPT_GUARDED_BY(mu_);
};

/// Registry of named instruments.  Registration returns stable references,
/// so instrumented code can cache them (`static Counter& c = ...`).  The
/// process-wide instance is MetricsRegistry::global(); separate instances
/// can be constructed for tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry; enabled at startup when VCOPT_METRICS=1.
  static MetricsRegistry& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Find-or-create by name.  Re-registering a histogram keeps the original
  /// bucket layout.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name,
                             std::vector<double> bounds);

  /// `n` equal-width bucket bounds covering [lo, hi].
  static std::vector<double> linear_buckets(double lo, double hi,
                                            std::size_t n);
  /// `n` bounds start, start*factor, start*factor^2, ... (factor > 1).
  static std::vector<double> exponential_buckets(double start, double factor,
                                                 std::size_t n);

  /// Zeroes every registered instrument (instruments stay registered).
  void reset();

  /// Point-in-time dump: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}.  Histogram entries carry bucket counts plus
  /// p50/p90/p99 estimated from the buckets.
  util::Json snapshot_json() const;
  /// Aligned text table of every instrument (one row per metric).
  std::string render_table() const;
  bool write_json_file(const std::string& path) const;
  /// Prometheus text exposition format: counters as `counter`, gauges as
  /// `gauge` (plus a `_max` companion), histograms as cumulative
  /// `_bucket{le=...}` / `_sum` / `_count`.  Metric names are sanitised
  /// ('/' and other invalid chars become '_').
  std::string prometheus_text() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      VCOPT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ VCOPT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_
      VCOPT_GUARDED_BY(mu_);
};

/// Prometheus name sanitisers (shared by the metrics and time-series
/// exporters).  Metric names map invalid chars to '_' and get a leading '_'
/// when they would start with a digit; label keys likewise; label values are
/// escaped per the text exposition format (backslash, quote, newline).
std::string prometheus_metric_name(const std::string& name);
std::string prometheus_label_key(const std::string& key);
std::string prometheus_escape_label_value(const std::string& value);

/// Bench support: when the global registry is enabled, arranges for a
/// metrics snapshot to be written to "<slug(id)>.metrics.json" at process
/// exit (the sidecar next to the bench's stdout capture).  No-op otherwise.
void register_metrics_sidecar(const std::string& id);

/// Writes the uniform bench metrics sidecar:
/// {"schema":"vcopt-metrics-sidecar/1","bench":<name>,"metrics":<snapshot>}.
/// Used by the perf benches so the perf trajectory can be graphed across
/// PRs with one schema.  Returns false on I/O failure.
bool write_metrics_sidecar_file(const MetricsRegistry& registry,
                                const std::string& path,
                                const std::string& bench_name);

}  // namespace vcopt::obs
