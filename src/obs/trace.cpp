#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <fstream>

namespace vcopt::obs {

namespace {

int current_tid() {
  static std::atomic<int> next{1};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::string g_trace_path;  // set when VCOPT_TRACE names an output file

}  // namespace

Tracer::Tracer() {
  epoch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

Tracer& Tracer::global() {
  static Tracer* tracer = [] {
    // Intentionally leaked process-lifetime singleton.
    auto* t = new Tracer();  // NOLINT(vcopt-raw-new)
    const char* env = std::getenv("VCOPT_TRACE");
    if (env != nullptr && env[0] != '\0' && std::string(env) != "0") {
      t->set_enabled(true);
      g_trace_path = env;
      std::atexit([] { Tracer::global().write_file(g_trace_path); });
    }
    return t;
  }();
  return *tracer;
}

double Tracer::now_us() const {
  const long long ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
  return static_cast<double>(ns - epoch_ns_) / 1000.0;
}

void Tracer::push(TraceEvent ev) {
  util::MutexLock lock(mu_);
  events_.push_back(std::move(ev));
}

void Tracer::begin(const char* name) {
  if (!enabled()) return;
  push(TraceEvent{name, 'B', now_us(), 0, 1, current_tid()});
}

void Tracer::end(const char* name) {
  if (!enabled()) return;
  push(TraceEvent{name, 'E', now_us(), 0, 1, current_tid()});
}

void Tracer::complete(const std::string& name, double ts_us, double dur_us,
                      int pid, int tid) {
  if (!enabled()) return;
  push(TraceEvent{name, 'X', ts_us, dur_us, pid, tid});
}

std::size_t Tracer::event_count() const {
  util::MutexLock lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  util::MutexLock lock(mu_);
  return events_;
}

void Tracer::clear() {
  util::MutexLock lock(mu_);
  events_.clear();
}

util::Json Tracer::events_json() const {
  util::MutexLock lock(mu_);
  util::JsonArray out;
  out.reserve(events_.size());
  for (const TraceEvent& ev : events_) {
    util::JsonObject o{{"name", ev.name},
                       {"ph", std::string(1, ev.ph)},
                       {"ts", ev.ts},
                       {"pid", ev.pid},
                       {"tid", ev.tid}};
    if (ev.ph == 'X') o["dur"] = ev.dur;
    out.push_back(util::Json(std::move(o)));
  }
  return util::Json(std::move(out));
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << events_json().dump(1) << "\n";
  return bool(out);
}

}  // namespace vcopt::obs
