#include "obs/telemetry.h"

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "util/table.h"

namespace vcopt::obs {

util::Json telemetry_bundle(const MetricsRegistry& metrics,
                            const Recorder& recorder, const SloTracker* slo,
                            double now, bool include_points) {
  util::JsonObject o;
  o["schema"] = "vcopt-telemetry/1";
  o["now"] = now;
  o["metrics"] = metrics.snapshot_json();
  o["timeseries"] = recorder.export_json(include_points);
  if (slo != nullptr) o["slo"] = slo->snapshot_json(now);
  return util::Json(std::move(o));
}

bool write_telemetry_file(const std::string& path,
                          const MetricsRegistry& metrics,
                          const Recorder& recorder, const SloTracker* slo,
                          double now, bool include_points) {
  std::ofstream out(path);
  if (!out) return false;
  out << telemetry_bundle(metrics, recorder, slo, now, include_points).dump(2)
      << "\n";
  return bool(out);
}

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

void render_stage_latency(const util::Json& metrics, std::ostream& out) {
  if (!metrics.is_object() || !metrics.contains("histograms")) return;
  const util::JsonObject& hists = metrics.at("histograms").as_object();
  util::TableWriter t({"Stage", "Count", "Mean(ms)", "P50(ms)", "P90(ms)",
                       "P99(ms)", "Max(ms)"});
  const std::string prefix = "service/stage/";
  for (const auto& [name, h] : hists) {
    if (!starts_with(name, prefix)) continue;
    const double count = h.number_or("count", 0);
    if (count == 0) {
      t.row().cell(name.substr(prefix.size())).cell(0).cell("-").cell("-")
          .cell("-").cell("-").cell("-");
      continue;
    }
    // Stage histograms record seconds; the dashboard reads better in ms.
    const double ms = 1e3;
    t.row()
        .cell(name.substr(prefix.size()))
        .cell(static_cast<std::size_t>(count))
        .cell(h.number_or("mean", 0) * ms)
        .cell(h.number_or("p50", 0) * ms)
        .cell(h.number_or("p90", 0) * ms)
        .cell(h.number_or("p99", 0) * ms)
        .cell(h.number_or("max", 0) * ms);
  }
  if (t.row_count() == 0) return;
  out << "== Service stage latency ==\n";
  t.print(out);
  out << "\n";
}

void render_snapshot_lifecycle(const util::Json& metrics, std::ostream& out) {
  // service/snapshot_* counters + the snapshot_age gauge: the pipelined
  // serving path's snapshot lifecycle (all zero when eval_threads == 0).
  if (!metrics.is_object() || !metrics.contains("counters")) return;
  const util::Json& counters = metrics.at("counters");
  const double builds = counters.number_or("service/snapshot_builds", 0);
  const double reuses = counters.number_or("service/snapshot_reuses", 0);
  const double conflicts = counters.number_or("service/snapshot_conflicts", 0);
  if (builds == 0 && reuses == 0 && conflicts == 0) return;
  double age = 0, age_max = 0;
  if (metrics.contains("gauges")) {
    const util::Json& gauges = metrics.at("gauges");
    if (gauges.is_object() && gauges.contains("service/snapshot_age")) {
      const util::Json& g = gauges.at("service/snapshot_age");
      age = g.number_or("value", 0);
      age_max = g.number_or("max", 0);
    }
  }
  util::TableWriter t({"Builds", "Reuses", "Conflicts", "Age(s)", "MaxAge(s)"});
  t.row()
      .cell(static_cast<std::size_t>(builds))
      .cell(static_cast<std::size_t>(reuses))
      .cell(static_cast<std::size_t>(conflicts))
      .cell(age, 6)
      .cell(age_max, 6);
  out << "== Serving snapshots ==\n";
  t.print(out);
  out << "\n";
}

void render_cells(const util::Json& metrics, std::ostream& out) {
  // cell/* counters + the sketch-staleness gauge: the route-then-place
  // sharding layer (docs/cells.md; absent until a routed run records).
  if (!metrics.is_object() || !metrics.contains("counters")) return;
  const util::Json& counters = metrics.at("counters");
  const double routed = counters.number_or("cell/routed", 0);
  const double updates = counters.number_or("cell/sketch_updates", 0);
  if (routed == 0 && updates == 0) return;
  util::TableWriter t({"Routed", "Pruned", "Unroutable", "Winner", "Spilled",
                       "FlatFallback", "WindowSpills"});
  t.row()
      .cell(static_cast<std::size_t>(routed))
      .cell(static_cast<std::size_t>(counters.number_or("cell/pruned", 0)))
      .cell(static_cast<std::size_t>(counters.number_or("cell/unroutable", 0)))
      .cell(static_cast<std::size_t>(
          counters.number_or("cell/placed_in_winner", 0)))
      .cell(static_cast<std::size_t>(counters.number_or("cell/spilled", 0)))
      .cell(static_cast<std::size_t>(
          counters.number_or("cell/fallback_flat", 0)))
      .cell(static_cast<std::size_t>(
          counters.number_or("cell/window_spills", 0)));
  out << "== Cells ==\n";
  t.print(out);
  util::TableWriter s({"Sketch updates", "Rebuilds", "Staleness"});
  double staleness = 0;
  if (metrics.contains("gauges")) {
    const util::Json& gauges = metrics.at("gauges");
    if (gauges.is_object() && gauges.contains("cell/sketch_staleness")) {
      staleness = gauges.at("cell/sketch_staleness").number_or("value", 0);
    }
  }
  s.row()
      .cell(static_cast<std::size_t>(updates))
      .cell(static_cast<std::size_t>(
          counters.number_or("cell/sketch_rebuilds", 0)))
      .cell(static_cast<std::size_t>(staleness));
  s.print(out);
  out << "\n";
}

void render_rebalancer(const util::Json& metrics, std::ostream& out) {
  // rebalance/* counters + the migration-gain histogram: the self-healing
  // rebalancer's round/migration ledger (absent until a rebalancer runs).
  if (!metrics.is_object() || !metrics.contains("counters")) return;
  const util::Json& counters = metrics.at("counters");
  const double rounds = counters.number_or("rebalance/rounds", 0);
  const double attempted =
      counters.number_or("rebalance/migrations_attempted", 0);
  if (rounds == 0 && attempted == 0) return;
  util::TableWriter t({"Rounds", "Deferred", "Attempted", "Committed",
                       "RolledBack", "Failed", "Disabled"});
  t.row()
      .cell(static_cast<std::size_t>(rounds))
      .cell(static_cast<std::size_t>(
          counters.number_or("rebalance/rounds_deferred", 0)))
      .cell(static_cast<std::size_t>(attempted))
      .cell(static_cast<std::size_t>(
          counters.number_or("rebalance/migrations_committed", 0)))
      .cell(static_cast<std::size_t>(
          counters.number_or("rebalance/migrations_rolled_back", 0)))
      .cell(static_cast<std::size_t>(
          counters.number_or("rebalance/migrations_failed", 0)))
      .cell(counters.number_or("rebalance/disabled", 0) > 0 ? "YES" : "no");
  out << "== Rebalancer ==\n";
  t.print(out);
  if (metrics.contains("histograms")) {
    const util::Json& hists = metrics.at("histograms");
    if (hists.is_object() && hists.contains("rebalance/migration_gain")) {
      const util::Json& h = hists.at("rebalance/migration_gain");
      const double count = h.number_or("count", 0);
      if (count > 0) {
        util::TableWriter g(
            {"Gain samples", "Mean", "P50", "P90", "P99", "Max"});
        g.row()
            .cell(static_cast<std::size_t>(count))
            .cell(h.number_or("mean", 0), 4)
            .cell(h.number_or("p50", 0), 4)
            .cell(h.number_or("p90", 0), 4)
            .cell(h.number_or("p99", 0), 4)
            .cell(h.number_or("max", 0), 4);
        g.print(out);
      }
    }
  }
  out << "\n";
}

void render_timeseries(const util::Json& ts, std::ostream& out) {
  if (!ts.is_object() || !ts.contains("series")) return;
  const util::JsonArray& series = ts.at("series").as_array();
  if (series.empty()) return;
  util::TableWriter t(
      {"Series", "Points", "Last", "Mean", "Min", "Max", "P50", "P99"});
  constexpr std::size_t kMaxRows = 64;
  std::size_t shown = 0;
  for (const util::Json& s : series) {
    if (shown >= kMaxRows) break;
    std::string label = s.at("name").as_string();
    if (s.contains("labels")) {
      const util::JsonObject& labels = s.at("labels").as_object();
      if (!labels.empty()) {
        label += '{';
        bool first = true;
        for (const auto& [k, v] : labels) {
          if (!first) label += ',';
          first = false;
          label += k + "=" + v.as_string();
        }
        label += '}';
      }
    }
    const util::Json& sum = s.at("summary");
    const double count = sum.number_or("count", 0);
    if (count == 0) {
      t.row().cell(label).cell(0).cell("-").cell("-").cell("-").cell("-")
          .cell("-").cell("-");
    } else {
      t.row()
          .cell(label)
          .cell(static_cast<std::size_t>(count))
          .cell(sum.number_or("last", 0))
          .cell(sum.number_or("mean", 0))
          .cell(sum.number_or("min", 0))
          .cell(sum.number_or("max", 0))
          .cell(sum.number_or("p50", 0))
          .cell(sum.number_or("p99", 0));
    }
    ++shown;
  }
  out << "== Time series (" << series.size() << " series";
  if (series.size() > shown) out << ", showing " << shown;
  out << ") ==\n";
  t.print(out);
  out << "\n";
}

void render_slo(const util::Json& slo, std::ostream& out) {
  if (!slo.is_object() || !slo.contains("slos")) return;
  const util::JsonArray& slos = slo.at("slos").as_array();
  if (slos.empty()) return;
  util::TableWriter t({"SLO", "Objective", "Bad/Total", "Short burn",
                       "Long burn", "Status"});
  bool any_alert = false;
  for (const util::Json& s : slos) {
    const bool alerting = s.contains("alerting") && s.at("alerting").as_bool();
    any_alert = any_alert || alerting;
    t.row()
        .cell(s.at("name").as_string())
        .cell(s.number_or("objective", 0), 4)
        .cell(util::format_double(s.number_or("bad", 0), 0) + "/" +
              util::format_double(s.number_or("total", 0), 0))
        .cell(s.number_or("short_burn", 0), 2)
        .cell(s.number_or("long_burn", 0), 2)
        .cell(alerting ? "ALERT" : "ok");
  }
  out << "== SLO status (t=" << util::format_double(slo.number_or("now", 0), 3)
      << ") ==\n";
  t.print(out);
  out << (any_alert ? "** burn-rate alert active **\n" : "all objectives ok\n");
  out << "\n";
}

}  // namespace

void render_stats(const util::Json& bundle, std::ostream& out) {
  if (!bundle.is_object() || !bundle.contains("schema") ||
      !bundle.at("schema").is_string() ||
      bundle.at("schema").as_string() != "vcopt-telemetry/1") {
    throw std::invalid_argument(
        "render_stats: not a vcopt-telemetry/1 bundle");
  }
  out << "vcopt telemetry @ t="
      << util::format_double(bundle.number_or("now", 0), 3) << "\n\n";
  if (bundle.contains("metrics")) {
    render_stage_latency(bundle.at("metrics"), out);
    render_snapshot_lifecycle(bundle.at("metrics"), out);
    render_cells(bundle.at("metrics"), out);
    render_rebalancer(bundle.at("metrics"), out);
  }
  if (bundle.contains("timeseries")) render_timeseries(bundle.at("timeseries"), out);
  if (bundle.contains("slo")) render_slo(bundle.at("slo"), out);
}

}  // namespace vcopt::obs
