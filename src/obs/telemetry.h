// Telemetry bundle: one JSON document tying together the three obs layers —
// point-in-time metrics (MetricsRegistry), history (Recorder time series)
// and objectives (SloTracker) — written by `vcopt_cli serve/sim
// --telemetry-out` and rendered by `vcopt_cli stats`.  The bundle is the
// hand-off format between a run and later analysis: the stats dashboard,
// CI smoke checks and (eventually) the Rebalancer's collect step all read
// the same document.
#pragma once

#include <iosfwd>
#include <string>

#include "util/json.h"

namespace vcopt::obs {

class MetricsRegistry;
class Recorder;
class SloTracker;

/// {"schema":"vcopt-telemetry/1","now":T,"metrics":{...},
///  "timeseries":{...},"slo":{...}} — slo omitted when `slo` is null.
util::Json telemetry_bundle(const MetricsRegistry& metrics,
                            const Recorder& recorder, const SloTracker* slo,
                            double now, bool include_points = true);

bool write_telemetry_file(const std::string& path,
                          const MetricsRegistry& metrics,
                          const Recorder& recorder, const SloTracker* slo,
                          double now, bool include_points = true);

/// Renders the text dashboard from a telemetry bundle: per-stage service
/// latency (admit/queue/batch/solve/commit), time-series summaries
/// (per-node load, per-lease DC, ...) and SLO burn-rate status.  Tolerates
/// bundles with missing sections (renders what is present).  Throws
/// std::invalid_argument when `bundle` is not a vcopt-telemetry/1 document.
void render_stats(const util::Json& bundle, std::ostream& out);

}  // namespace vcopt::obs
