#include "obs/slo.h"

#include <algorithm>
#include <stdexcept>

namespace vcopt::obs {

void SloTracker::declare(const SloSpec& spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("SloTracker::declare: empty name");
  }
  if (spec.objective <= 0 || spec.objective > 1) {
    throw std::invalid_argument("SloTracker::declare: objective must be in (0,1]: " +
                                spec.name);
  }
  if (spec.short_window <= 0 || spec.long_window < spec.short_window) {
    throw std::invalid_argument(
        "SloTracker::declare: need 0 < short_window <= long_window: " +
        spec.name);
  }
  util::MutexLock lock(mu_);
  auto it = slos_.find(spec.name);
  if (it != slos_.end()) return;  // find-or-create: first declaration wins
  Series s;
  s.spec = spec;
  slos_.emplace(spec.name, std::move(s));
}

bool SloTracker::declared(const std::string& name) const {
  util::MutexLock lock(mu_);
  return slos_.count(name) > 0;
}

std::vector<std::string> SloTracker::names() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(slos_.size());
  for (const auto& [name, s] : slos_) out.push_back(name);
  return out;
}

void SloTracker::record_event(const std::string& name, double t, bool good) {
  util::MutexLock lock(mu_);
  auto it = slos_.find(name);
  if (it == slos_.end()) {
    throw std::invalid_argument("SloTracker: undeclared SLO: " + name);
  }
  Series& s = it->second;
  s.events.push_back(Event{t, good});
  ++s.total;
  if (!good) ++s.bad;
  s.max_t = std::max(s.max_t, t);
  // Prune anything older than the long window behind the newest event, so a
  // long-running service holds O(window * rate) events, not the full history.
  const double horizon = s.max_t - s.spec.long_window;
  while (!s.events.empty() && s.events.front().t < horizon) {
    s.events.pop_front();
  }
}

void SloTracker::record_value(const std::string& name, double t, double value) {
  // Threshold lookup needs the spec; do it under the same lock as the push.
  util::MutexLock lock(mu_);
  auto it = slos_.find(name);
  if (it == slos_.end()) {
    throw std::invalid_argument("SloTracker: undeclared SLO: " + name);
  }
  Series& s = it->second;
  const bool good = value <= s.spec.threshold;
  s.events.push_back(Event{t, good});
  ++s.total;
  if (!good) ++s.bad;
  s.max_t = std::max(s.max_t, t);
  const double horizon = s.max_t - s.spec.long_window;
  while (!s.events.empty() && s.events.front().t < horizon) {
    s.events.pop_front();
  }
}

SloStatus SloTracker::evaluate_locked(const Series& s, double now) const {
  SloStatus st;
  st.spec = s.spec;
  st.total = s.total;
  st.bad = s.bad;
  const double short_start = now - s.spec.short_window;
  const double long_start = now - s.spec.long_window;
  for (const Event& e : s.events) {
    if (e.t > now) continue;  // future events (clock skew) don't count yet
    if (e.t >= long_start) {
      ++st.long_total;
      if (!e.good) ++st.long_bad;
    }
    if (e.t >= short_start) {
      ++st.short_total;
      if (!e.good) ++st.short_bad;
    }
  }
  if (st.short_total > 0) {
    st.short_burn = (static_cast<double>(st.short_bad) /
                     static_cast<double>(st.short_total)) /
                    s.spec.objective;
  }
  if (st.long_total > 0) {
    st.long_burn = (static_cast<double>(st.long_bad) /
                    static_cast<double>(st.long_total)) /
                   s.spec.objective;
  }
  st.alerting = st.short_total >= s.spec.min_events &&
                st.short_burn >= s.spec.burn_alert &&
                st.long_burn >= s.spec.burn_alert;
  return st;
}

std::vector<SloStatus> SloTracker::evaluate(double now) const {
  util::MutexLock lock(mu_);
  std::vector<SloStatus> out;
  out.reserve(slos_.size());
  for (const auto& [name, s] : slos_) {
    out.push_back(evaluate_locked(s, now));
  }
  return out;
}

bool SloTracker::any_alerting(double now) const {
  util::MutexLock lock(mu_);
  for (const auto& [name, s] : slos_) {
    if (evaluate_locked(s, now).alerting) return true;
  }
  return false;
}

util::Json SloTracker::snapshot_json(double now) const {
  util::MutexLock lock(mu_);
  util::JsonArray arr;
  for (const auto& [name, s] : slos_) {
    const SloStatus st = evaluate_locked(s, now);
    util::JsonObject o;
    o["name"] = st.spec.name;
    o["description"] = st.spec.description;
    o["objective"] = st.spec.objective;
    o["threshold"] = st.spec.threshold;
    o["short_window"] = st.spec.short_window;
    o["long_window"] = st.spec.long_window;
    o["burn_alert"] = st.spec.burn_alert;
    o["total"] = static_cast<double>(st.total);
    o["bad"] = static_cast<double>(st.bad);
    o["short_total"] = static_cast<double>(st.short_total);
    o["short_bad"] = static_cast<double>(st.short_bad);
    o["long_total"] = static_cast<double>(st.long_total);
    o["long_bad"] = static_cast<double>(st.long_bad);
    o["short_burn"] = st.short_burn;
    o["long_burn"] = st.long_burn;
    o["alerting"] = st.alerting;
    arr.push_back(util::Json(std::move(o)));
  }
  return util::Json(util::JsonObject{{"schema", "vcopt-slo/1"},
                                     {"now", now},
                                     {"slos", std::move(arr)}});
}

void SloTracker::reset() {
  util::MutexLock lock(mu_);
  for (auto& [name, s] : slos_) {
    s.events.clear();
    s.total = 0;
    s.bad = 0;
    s.max_t = 0;
  }
}

}  // namespace vcopt::obs
