// Request-scoped tracing context for the placement service.
//
// Every request admitted by vcopt::service gets a RequestContext carrying a
// trace id that follows the request through admission -> queue -> micro-batch
// window -> solve -> grant/journal.  The id is a *pure function* of the
// request id and admission sequence number (splitmix64 of both), never a
// random draw: live runs and journal replays derive the same id from the
// same journal bytes, which is what keeps replay byte-identical while still
// letting every grant be traced back to its admission.
#pragma once

#include <cstdint>
#include <string>

namespace vcopt::obs {

/// splitmix64 finalizer — a cheap, well-mixed 64-bit hash.  Deterministic
/// across platforms (pure integer arithmetic).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a string — used to fold the request id into the trace id so
/// two requests with the same admission seq in different journals still get
/// distinct ids.
inline std::uint64_t hash_string64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Deterministic trace id for a request: mixes the admission sequence number
/// with the request id.  Never zero (zero is reserved for "no trace").
inline std::uint64_t derive_trace_id(std::uint64_t seq,
                                     std::uint64_t request_id) {
  const std::uint64_t id = mix64(seq ^ mix64(request_id));
  return id == 0 ? 1 : id;
}

/// String-keyed variant for callers with non-numeric request ids.
inline std::uint64_t derive_trace_id(std::uint64_t seq,
                                     const std::string& request_id) {
  return derive_trace_id(seq, hash_string64(request_id));
}

/// 16-hex-digit lowercase rendering, the form journals and grants carry.
inline std::string trace_id_hex(std::uint64_t id) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[id & 0xF];
    id >>= 4;
  }
  return out;
}

/// Parses a 16-hex-digit trace id; returns 0 on malformed input.
inline std::uint64_t parse_trace_id(const std::string& hex) {
  if (hex.size() != 16) return 0;
  std::uint64_t id = 0;
  for (const char c : hex) {
    id <<= 4;
    if (c >= '0' && c <= '9') {
      id |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      id |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return 0;
    }
  }
  return id;
}

/// The context a request carries through the service ladder.
struct RequestContext {
  std::uint64_t trace_id = 0;  ///< 0 = untraced
  std::uint64_t seq = 0;       ///< admission sequence number
  double admit_time = 0;       ///< service-clock time of admission

  std::string trace_hex() const { return trace_id_hex(trace_id); }
};

}  // namespace vcopt::obs
