// Time-series collection: bounded ring-buffer series keyed by
// (name, labels), sampled on simulated-time or wall-clock ticks, with
// windowed summaries (count/min/max/mean/p50/p99) and CSV / JSON /
// Prometheus export.  This is the history layer the point-in-time
// MetricsRegistry lacks — the signals a continuous rebalancer (ROADMAP)
// watches are recorded here: per-node load and free capacity, fragmentation,
// and per-lease DC trajectories (see cluster::ClusterSampler).
//
// Like the metrics registry, a disabled Recorder makes every record() a
// single relaxed atomic load, so samplers can stay wired unconditionally;
// the global instance is switched on by VCOPT_TIMESERIES=1 or
// programmatically (vcopt_cli --telemetry-out).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace vcopt::obs {

/// Label set attached to a series ("node" -> "17", "lease" -> "3").  Sorted
/// map so the canonical key (and every export) is deterministic.
using Labels = std::map<std::string, std::string>;

/// Canonical series key: `name` for label-free series, `name{k=v,...}` with
/// the labels in sorted order otherwise.
std::string series_key(const std::string& name, const Labels& labels);

class Recorder;

/// One bounded series of (time, value) points.  The ring buffer keeps the
/// most recent `capacity` points; older points are dropped (and counted), so
/// long-running services hold a sliding window of history at O(1) memory.
class TimeSeries {
 public:
  /// Standalone series (always enabled) — tests and ad-hoc use.
  TimeSeries(std::string name, Labels labels, std::size_t capacity = 256);

  struct Point {
    double t = 0;
    double v = 0;
  };

  /// Windowed summary over the retained points (optionally only those with
  /// t >= since).  Percentiles are exact over the retained window.
  struct Summary {
    std::size_t count = 0;
    double min = 0;
    double max = 0;
    double mean = 0;
    double p50 = 0;
    double p99 = 0;
    double first_t = 0;
    double last_t = 0;
    double last = 0;  ///< most recent value
  };

  void record(double t, double v);

  const std::string& name() const { return name_; }
  const Labels& labels() const { return labels_; }
  std::string key() const { return series_key(name_, labels_); }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  /// Points overwritten because the ring was full.
  std::uint64_t dropped() const;

  /// Retained points in time order (oldest first).
  std::vector<Point> points() const;
  Summary summarize() const;
  Summary summarize_since(double since) const;

  /// {"name":..,"labels":{..},"capacity":..,"dropped":..,"summary":{..},
  ///  "points":[[t,v],..]} — points included only when `include_points`.
  util::Json to_json(bool include_points = true) const;

 private:
  friend class Recorder;
  TimeSeries(const std::atomic<bool>* enabled, std::string name, Labels labels,
             std::size_t capacity);
  Summary summarize_locked(double since) const VCOPT_REQUIRES(mu_);

  const std::atomic<bool>* enabled_;  ///< null = always on (standalone)
  const std::string name_;
  const Labels labels_;
  const std::size_t capacity_;
  mutable util::Mutex mu_;
  /// Grows to capacity_, then wraps.
  std::vector<Point> ring_ VCOPT_GUARDED_BY(mu_);
  /// Next write slot once the ring is full.
  std::size_t head_ VCOPT_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ VCOPT_GUARDED_BY(mu_) = 0;
};

/// Registry of time series.  series() returns stable references, so hot
/// samplers can cache them and skip the map lookup on every tick.  The
/// process-wide instance is Recorder::global(); separate instances can be
/// constructed for tests or per-service isolation.
class Recorder {
 public:
  Recorder() = default;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Process-wide recorder; enabled at startup when VCOPT_TIMESERIES=1.
  static Recorder& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Find-or-create by (name, labels).  Re-registering keeps the original
  /// capacity.
  TimeSeries& series(const std::string& name, const Labels& labels = {},
                     std::size_t capacity = 256);
  /// Convenience one-shot record (does the map lookup each call).
  void record(const std::string& name, const Labels& labels, double t,
              double v);

  std::size_t series_count() const;
  /// Drops every series (unlike MetricsRegistry::reset, which keeps the
  /// instruments registered — series identity is (name, labels) anyway).
  void reset();

  /// {"schema":"vcopt-timeseries/1","series":[<TimeSeries::to_json>...]},
  /// sorted by series key.
  util::Json export_json(bool include_points = true) const;
  /// One `series,labels,t,value` row per retained point, sorted by key.
  void write_csv(std::ostream& out) const;
  bool write_csv_file(const std::string& path) const;
  /// Prometheus text format: each series' most recent value as a gauge,
  /// with sanitised metric names and escaped label values.
  std::string prometheus_text() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<TimeSeries>> series_
      VCOPT_GUARDED_BY(mu_);
};

}  // namespace vcopt::obs
