#include "obs/timeseries.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace vcopt::obs {

std::string series_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += '=';
    key += v;
  }
  key += '}';
  return key;
}

TimeSeries::TimeSeries(std::string name, Labels labels, std::size_t capacity)
    : TimeSeries(nullptr, std::move(name), std::move(labels), capacity) {}

TimeSeries::TimeSeries(const std::atomic<bool>* enabled, std::string name,
                       Labels labels, std::size_t capacity)
    : enabled_(enabled),
      name_(std::move(name)),
      labels_(std::move(labels)),
      capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("TimeSeries: capacity must be > 0");
  }
  ring_.reserve(std::min<std::size_t>(capacity_, 64));
}

void TimeSeries::record(double t, double v) {
  if (enabled_ != nullptr && !enabled_->load(std::memory_order_relaxed)) {
    return;
  }
  util::MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(Point{t, v});
    return;
  }
  // Ring is full: overwrite the oldest point.
  ring_[head_] = Point{t, v};
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::size_t TimeSeries::size() const {
  util::MutexLock lock(mu_);
  return ring_.size();
}

std::uint64_t TimeSeries::dropped() const {
  util::MutexLock lock(mu_);
  return dropped_;
}

std::vector<TimeSeries::Point> TimeSeries::points() const {
  util::MutexLock lock(mu_);
  std::vector<Point> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

TimeSeries::Summary TimeSeries::summarize_locked(double since) const {
  Summary s;
  std::vector<double> values;
  values.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Point& p = ring_[(head_ + i) % ring_.size()];
    if (p.t < since) continue;
    if (s.count == 0) s.first_t = p.t;
    s.last_t = p.t;
    s.last = p.v;
    ++s.count;
    values.push_back(p.v);
  }
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double sum = 0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  const auto pct = [&](double p) {
    const double rank = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    return values[lo] + (values[hi] - values[lo]) *
                            (rank - static_cast<double>(lo));
  };
  s.p50 = pct(0.50);
  s.p99 = pct(0.99);
  return s;
}

TimeSeries::Summary TimeSeries::summarize() const {
  util::MutexLock lock(mu_);
  return summarize_locked(-std::numeric_limits<double>::infinity());
}

TimeSeries::Summary TimeSeries::summarize_since(double since) const {
  util::MutexLock lock(mu_);
  return summarize_locked(since);
}

util::Json TimeSeries::to_json(bool include_points) const {
  util::JsonObject o;
  o["name"] = name_;
  util::JsonObject labels;
  for (const auto& [k, v] : labels_) labels[k] = v;
  o["labels"] = util::Json(std::move(labels));
  o["capacity"] = capacity_;
  o["dropped"] = static_cast<double>(dropped());
  const Summary s = summarize();
  util::JsonObject sum;
  sum["count"] = s.count;
  if (s.count > 0) {
    sum["min"] = s.min;
    sum["max"] = s.max;
    sum["mean"] = s.mean;
    sum["p50"] = s.p50;
    sum["p99"] = s.p99;
    sum["first_t"] = s.first_t;
    sum["last_t"] = s.last_t;
    sum["last"] = s.last;
  }
  o["summary"] = util::Json(std::move(sum));
  if (include_points) {
    util::JsonArray pts;
    for (const Point& p : points()) {
      pts.push_back(util::Json(util::JsonArray{util::Json(p.t),
                                               util::Json(p.v)}));
    }
    o["points"] = util::Json(std::move(pts));
  }
  return util::Json(std::move(o));
}

Recorder& Recorder::global() {
  static Recorder* rec = [] {
    // Intentionally leaked process-lifetime singleton.
    auto* r = new Recorder();  // NOLINT(vcopt-raw-new)
    const char* env = std::getenv("VCOPT_TIMESERIES");
    if (env != nullptr && env[0] != '\0' && std::string(env) != "0") {
      r->set_enabled(true);
    }
    return r;
  }();
  return *rec;
}

TimeSeries& Recorder::series(const std::string& name, const Labels& labels,
                             std::size_t capacity) {
  const std::string key = series_key(name, labels);
  util::MutexLock lock(mu_);
  auto& slot = series_[key];
  if (!slot) {
    // Private ctor: make_unique cannot be used here.
    slot.reset(new TimeSeries(  // NOLINT(vcopt-raw-new)
        &enabled_, name, labels, capacity));
  }
  return *slot;
}

void Recorder::record(const std::string& name, const Labels& labels, double t,
                      double v) {
  if (!enabled()) return;
  series(name, labels).record(t, v);
}

std::size_t Recorder::series_count() const {
  util::MutexLock lock(mu_);
  return series_.size();
}

void Recorder::reset() {
  util::MutexLock lock(mu_);
  series_.clear();
}

util::Json Recorder::export_json(bool include_points) const {
  util::MutexLock lock(mu_);
  util::JsonArray arr;
  for (const auto& [key, ts] : series_) {
    arr.push_back(ts->to_json(include_points));
  }
  return util::Json(util::JsonObject{{"schema", "vcopt-timeseries/1"},
                                     {"series", std::move(arr)}});
}

void Recorder::write_csv(std::ostream& out) const {
  util::MutexLock lock(mu_);
  out << "series,labels,t,value\n";
  for (const auto& [key, ts] : series_) {
    std::string labels;
    bool first = true;
    for (const auto& [k, v] : ts->labels()) {
      if (!first) labels += ';';
      first = false;
      labels += k;
      labels += '=';
      labels += v;
    }
    for (const TimeSeries::Point& p : ts->points()) {
      out << ts->name() << ',' << labels << ',' << p.t << ',' << p.v << "\n";
    }
  }
}

bool Recorder::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  return bool(out);
}

std::string Recorder::prometheus_text() const {
  util::MutexLock lock(mu_);
  std::ostringstream out;
  std::string last_name;
  for (const auto& [key, ts] : series_) {
    const TimeSeries::Summary s = ts->summarize();
    if (s.count == 0) continue;
    const std::string metric = prometheus_metric_name(ts->name());
    if (metric != last_name) {
      out << "# TYPE " << metric << " gauge\n";
      last_name = metric;
    }
    out << metric;
    if (!ts->labels().empty()) {
      out << '{';
      bool first = true;
      for (const auto& [k, v] : ts->labels()) {
        if (!first) out << ',';
        first = false;
        out << prometheus_label_key(k) << "=\""
            << prometheus_escape_label_value(v) << '"';
      }
      out << '}';
    }
    out << ' ' << util::Json(s.last).dump(0) << "\n";
  }
  return out.str();
}

}  // namespace vcopt::obs
