// Algorithm 1 of the paper: the online greedy VM placement heuristic.
//
// For each candidate central node x:
//   1. take com(L[x], R) from x itself,
//   2. fill the rest from x's rack-mates, visited in descending
//      co-provisionable capacity (the paper's getList(D, x, 0) ordering),
//   3. then from off-rack nodes in the same ordering (getList(D, x, 1)),
// and keep the candidate whose completed allocation has the smallest
// distance.  Theorem 1 (moving one VM from a farther to a nearer node
// shrinks DC) justifies the nearest-first fill.
//
// The pseudocode's outer loop breaks on the first candidate that improves on
// the incumbent; `Mode::kBestOfAllStarts` (default) evaluates every start
// instead, which matches the text's stated intent of picking "the most
// appropriate central node" and is never worse.  kFirstImprovement
// reproduces the literal break-on-improvement behaviour.
//
// Performance (see docs/performance.md): every candidate evaluation is
// independent and read-only over `remaining`, so kBestOfAllStarts scans
// candidates in parallel on util::ThreadPool (VCOPT_THREADS).  The scan is
// deterministic — the winner is the lexicographic minimum of (distance,
// central index), reduced commutatively across chunks — so parallel output
// is bit-identical to serial.  Per-thread Workspace buffers make the fill
// allocation-free in steady state, and a candidate is abandoned early once
// its partial distance can no longer beat the incumbent.
#pragma once

#include "placement/policy.h"
#include "util/thread_pool.h"

namespace vcopt::placement {

class OnlineHeuristic : public PlacementPolicy {
 public:
  enum class Mode { kBestOfAllStarts, kFirstImprovement };

  /// How the candidate-central-node scan runs.  kAuto picks parallel when
  /// the pool has workers and the candidate count amortises the fork/join;
  /// kSerial/kParallel force one path (kParallel still degrades gracefully
  /// to inline execution on a worker-less pool).
  enum class Execution { kAuto, kSerial, kParallel };

  explicit OnlineHeuristic(Mode mode = Mode::kBestOfAllStarts,
                           Execution execution = Execution::kAuto)
      : mode_(mode), execution_(execution) {}

  /// Pool override for tests and embedders; nullptr means
  /// util::ThreadPool::global().  Not owned; must outlive the heuristic.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }
  void set_execution(Execution execution) { execution_ = execution; }

  std::optional<Placement> place(const cluster::Request& request,
                                 const util::IntMatrix& remaining,
                                 const cluster::Topology& topology) override;

  std::string name() const override { return "online-heuristic"; }

  /// The greedy fill for one fixed candidate central node; exposed for
  /// tests.  Returns nullopt if the request cannot be completed.
  static std::optional<cluster::Allocation> fill_from_central(
      const cluster::Request& request, const util::IntMatrix& remaining,
      const cluster::Topology& topology, std::size_t central);

 private:
  Mode mode_;
  Execution execution_;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace vcopt::placement
