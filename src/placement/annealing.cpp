#include "placement/annealing.h"

#include <cmath>

#include "util/rng.h"

namespace vcopt::placement {

namespace {

// Re-evaluates one placement's best central after its allocation changed.
void refresh(Placement& p, const util::DoubleMatrix& dist) {
  const cluster::CentralNode c = p.allocation.best_central(dist);
  p.central = c.node;
  p.distance = c.distance;
}

double total_distance(const std::vector<Placement>& ps) {
  double sum = 0;
  for (const Placement& p : ps) sum += p.distance;
  return sum;
}

}  // namespace

BatchPlacement anneal_batch(const std::vector<cluster::Request>& batch,
                            const util::IntMatrix& remaining,
                            const cluster::Topology& topology,
                            const AnnealOptions& options) {
  // Start from Algorithm 2 (same admission decisions).
  GlobalSubOpt algo2;
  BatchPlacement state = algo2.place_batch(batch, remaining, topology);
  if (state.placements.size() < 1) return state;

  const util::DoubleMatrix& dist = topology.distance_matrix();
  const std::size_t n = remaining.rows();
  const std::size_t m = remaining.cols();

  // Free capacity = remaining minus everything the batch holds.
  util::IntMatrix free = remaining;
  for (const Placement& p : state.placements) free -= p.allocation.counts();

  std::vector<Placement> best = state.placements;
  double best_total = total_distance(best);
  double current_total = best_total;

  util::Rng rng(options.seed);
  double temperature = options.initial_temperature;

  const auto pick = [&rng](std::size_t bound) {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bound) - 1));
  };

  for (std::size_t it = 0; it < options.iterations; ++it) {
    temperature *= options.cooling;
    const std::size_t ci = pick(state.placements.size());
    Placement& a = state.placements[ci];

    // Choose a random occupied (node, type) cell of cluster a.
    const auto used = a.allocation.used_nodes();
    if (used.empty()) continue;
    const std::size_t from = used[pick(used.size())];
    std::size_t type = m;
    for (std::size_t tries = 0; tries < m; ++tries) {
      const std::size_t j = pick(m);
      if (a.allocation.at(from, j) > 0) {
        type = j;
        break;
      }
    }
    if (type == m) {
      for (std::size_t j = 0; j < m; ++j) {
        if (a.allocation.at(from, j) > 0) type = j;
      }
    }
    if (type == m) continue;

    const double before = a.distance;
    if (rng.bernoulli(0.5)) {
      // Relocate into free capacity on a random other node.
      const std::size_t to = pick(n);
      if (to == from || free(to, type) <= 0) continue;
      a.allocation.at(from, type) -= 1;
      a.allocation.at(to, type) += 1;
      refresh(a, dist);
      const double delta = a.distance - before;
      if (delta <= 0 || rng.uniform01() < std::exp(-delta / temperature)) {
        free(from, type) += 1;
        free(to, type) -= 1;
        current_total += delta;
      } else {  // reject: undo
        a.allocation.at(to, type) -= 1;
        a.allocation.at(from, type) += 1;
        refresh(a, dist);
      }
    } else {
      // Exchange same-type VMs with another cluster.
      if (state.placements.size() < 2) continue;
      std::size_t cj = pick(state.placements.size());
      if (cj == ci) continue;
      Placement& b = state.placements[cj];
      const auto b_used = b.allocation.used_nodes();
      std::size_t other = n;
      for (std::size_t tries = 0; tries < b_used.size(); ++tries) {
        const std::size_t cand = b_used[pick(b_used.size())];
        if (cand != from && b.allocation.at(cand, type) > 0) {
          other = cand;
          break;
        }
      }
      if (other == n) continue;
      const double before_pair = a.distance + b.distance;
      a.allocation.at(from, type) -= 1;
      a.allocation.at(other, type) += 1;
      b.allocation.at(other, type) -= 1;
      b.allocation.at(from, type) += 1;
      refresh(a, dist);
      refresh(b, dist);
      const double delta = a.distance + b.distance - before_pair;
      if (delta <= 0 || rng.uniform01() < std::exp(-delta / temperature)) {
        current_total += delta;  // free capacity unchanged by swaps
      } else {  // reject: undo
        a.allocation.at(other, type) -= 1;
        a.allocation.at(from, type) += 1;
        b.allocation.at(from, type) -= 1;
        b.allocation.at(other, type) += 1;
        refresh(a, dist);
        refresh(b, dist);
      }
    }

    if (current_total < best_total - 1e-12) {
      best_total = current_total;
      best = state.placements;
    }
  }

  state.placements = std::move(best);
  state.total_distance = total_distance(state.placements);
  return state;
}

}  // namespace vcopt::placement
