// Algorithm 2 of the paper: global sub-optimisation for a batch of requests.
//
// Step 1  admit as many queued requests as current capacity allows (FIFO);
// Step 2  run the online heuristic (Algorithm 1) per request, debiting
//         capacity after each;
// Step 3  adjust pairs of allocations with distinct central nodes by the
//         Theorem-2 transfer: if cluster A holds a type-r VM on cluster B's
//         central node y while B holds a type-r VM on some other node q, and
//         D(x,y) + D(y,q) > D(x,q) (x = A's central), swapping the two VMs
//         strictly reduces the summed distance.  Swaps conserve per-node
//         per-type totals, so capacity feasibility is preserved by
//         construction.  We iterate pairs until no improving swap remains
//         (bounded: every swap strictly reduces a lower-bounded sum).
#pragma once

#include <optional>
#include <vector>

#include "placement/online_heuristic.h"
#include "placement/policy.h"

namespace vcopt::placement {

struct BatchPlacement {
  /// One placement per admitted request, in admission order.
  std::vector<Placement> placements;
  /// Indices (into the input batch) of the requests that were admitted.
  std::vector<std::size_t> admitted;
  double total_distance = 0;
  std::size_t transfers_applied = 0;
};

class GlobalSubOpt {
 public:
  struct Options {
    bool apply_transfers = true;     ///< false = Step 1+2 only (ablation)
    std::size_t max_rounds = 100;    ///< outer fixpoint rounds over all pairs
  };

  GlobalSubOpt() = default;
  explicit GlobalSubOpt(Options options) : options_(options) {}

  /// Serves a FIFO batch: admits requests while capacity lasts, places each
  /// with Algorithm 1, then applies Theorem-2 transfers across all pairs.
  /// `remaining` is not modified; the result carries the chosen allocations.
  BatchPlacement place_batch(const std::vector<cluster::Request>& batch,
                             const util::IntMatrix& remaining,
                             const cluster::Topology& topology);

  /// One Theorem-2 adjustment pass between two placements.  Returns the
  /// number of improving swaps applied (0 when none exists).  Exposed for
  /// unit tests of Theorem 2.
  static std::size_t transfer(Placement& a, Placement& b,
                              const util::DoubleMatrix& dist);

  /// Same adjustment pass, but the post-swap central recompute goes through
  /// cluster::best_central_tiered — O(n) (and SIMD) instead of the O(n²)
  /// dense scan, bit-identical for integral DistanceConfig tiers.  This is
  /// the overload place_batch uses on the hot path.
  static std::size_t transfer(Placement& a, Placement& b,
                              const cluster::Topology& topology);

 private:
  Options options_;
};

}  // namespace vcopt::placement
