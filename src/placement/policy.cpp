#include "placement/policy.h"

#include <stdexcept>

#include "placement/baselines.h"
#include "placement/online_heuristic.h"

namespace vcopt::placement {

Placement evaluate(cluster::Allocation alloc, const util::DoubleMatrix& dist) {
  const cluster::CentralNode c = alloc.best_central(dist);
  return Placement{std::move(alloc), c.node, c.distance};
}

std::unique_ptr<PlacementPolicy> make_policy(const std::string& spec) {
  if (spec == "online-heuristic") return std::make_unique<OnlineHeuristic>();
  if (spec == "online-heuristic-first") {
    return std::make_unique<OnlineHeuristic>(
        OnlineHeuristic::Mode::kFirstImprovement);
  }
  if (spec == "sd-exact") return std::make_unique<SdExactPolicy>();
  if (spec == "first-fit") return std::make_unique<FirstFitPolicy>();
  if (spec == "spread") return std::make_unique<SpreadPolicy>();
  if (spec.rfind("random", 0) == 0) {
    std::uint64_t seed = 1;
    const auto colon = spec.find(':');
    if (colon != std::string::npos) seed = std::stoull(spec.substr(colon + 1));
    return std::make_unique<RandomPolicy>(seed);
  }
  throw std::invalid_argument("make_policy: unknown policy '" + spec + "'");
}

std::vector<std::string> policy_names() {
  return {"online-heuristic", "online-heuristic-first", "sd-exact",
          "first-fit", "spread", "random"};
}

}  // namespace vcopt::placement
