#include "placement/migration.h"

#include <stdexcept>

namespace vcopt::placement {

namespace {
constexpr double kEps = 1e-9;

// Best single Theorem-1 move for a FIXED central node x over ALL
// (donor, receiver, type) triples: relocating one VM of `type` from `donor`
// to free capacity on `receiver` changes the distance by exactly
// D(receiver, x) - D(donor, x) (Theorem 1's exchange).  When `move_cost` is
// non-empty the per-type cost is charged against the gain and triples are
// ranked by NET gain; a move qualifies only when its net exceeds
// `min_net`.  Returns true and fills `move`/`gain`/`cost` when a qualifying
// move exists.
bool best_move_for_central(const cluster::Allocation& alloc,
                           const util::IntMatrix& remaining,
                           const util::DoubleMatrix& dist, std::size_t x,
                           const std::vector<double>& move_cost,
                           double min_net, Migration& move, double& gain,
                           double& cost) {
  const std::size_t n = alloc.node_count();
  const std::size_t m = alloc.type_count();
  bool found = false;
  double best_net = 0;
  for (std::size_t donor = 0; donor < n; ++donor) {
    if (alloc.vms_on_node(donor) == 0) continue;
    for (std::size_t j = 0; j < m; ++j) {
      if (alloc.at(donor, j) == 0) continue;
      const double c = j < move_cost.size() ? move_cost[j] : 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        if (r == donor || remaining(r, j) <= 0) continue;
        const double g = dist(donor, x) - dist(r, x);
        const double net = g - c;
        if (g > kEps && net > min_net + kEps && (!found || net > best_net)) {
          found = true;
          best_net = net;
          gain = g;
          cost = c;
          move = Migration{donor, r, j};
        }
      }
    }
  }
  return found;
}

}  // namespace

ConsolidationResult consolidate(Placement& placement,
                                util::IntMatrix& remaining,
                                const util::DoubleMatrix& dist,
                                const ConsolidateOptions& options) {
  cluster::Allocation& alloc = placement.allocation;
  if (remaining.rows() != alloc.node_count() ||
      remaining.cols() != alloc.type_count()) {
    throw std::invalid_argument("consolidate: remaining shape mismatch");
  }

  ConsolidationResult out;
  {
    const cluster::CentralNode c = alloc.best_central(dist);
    placement.central = c.node;
    placement.distance = c.distance;
  }
  out.distance_before = placement.distance;

  const std::vector<double> no_cost;
  while (out.migrations.size() < options.max_migrations) {
    Migration move;
    double gain = 0;
    double cost = 0;
    if (!best_move_for_central(alloc, remaining, dist, placement.central,
                               no_cost, 0.0, move, gain, cost)) {
      break;
    }
    // Apply: the vacated slot becomes free capacity, the target slot is
    // consumed.
    alloc.at(move.from_node, move.type) -= 1;
    alloc.at(move.to_node, move.type) += 1;
    remaining(move.from_node, move.type) += 1;
    remaining(move.to_node, move.type) -= 1;
    out.migrations.push_back(move);
    // The optimal central may shift after a move; re-evaluate (only ever
    // lowers the distance further).
    const cluster::CentralNode c = alloc.best_central(dist);
    placement.central = c.node;
    placement.distance = c.distance;
  }
  out.distance_after = placement.distance;
  return out;
}

BudgetedConsolidation consolidate_budgeted(
    Placement& placement, util::IntMatrix& remaining,
    const util::DoubleMatrix& dist, const BudgetedConsolidateOptions& options) {
  cluster::Allocation& alloc = placement.allocation;
  if (remaining.rows() != alloc.node_count() ||
      remaining.cols() != alloc.type_count()) {
    throw std::invalid_argument("consolidate_budgeted: remaining shape mismatch");
  }
  if (!options.move_cost.empty() &&
      options.move_cost.size() != alloc.type_count()) {
    throw std::invalid_argument("consolidate_budgeted: move_cost size mismatch");
  }

  BudgetedConsolidation out;
  {
    const cluster::CentralNode c = alloc.best_central(dist);
    placement.central = c.node;
    placement.distance = c.distance;
  }
  out.distance_before = placement.distance;

  while (out.moves.size() < options.max_migrations) {
    Migration move;
    double gain = 0;
    double cost = 0;
    if (!best_move_for_central(alloc, remaining, dist, placement.central,
                               options.move_cost, options.min_net_gain, move,
                               gain, cost)) {
      break;
    }
    alloc.at(move.from_node, move.type) -= 1;
    alloc.at(move.to_node, move.type) += 1;
    remaining(move.from_node, move.type) += 1;
    remaining(move.to_node, move.type) -= 1;
    out.moves.push_back(BudgetedMove{move, gain, cost});
    out.total_cost += cost;
    const cluster::CentralNode c = alloc.best_central(dist);
    placement.central = c.node;
    placement.distance = c.distance;
  }
  out.distance_after = placement.distance;
  return out;
}

}  // namespace vcopt::placement
