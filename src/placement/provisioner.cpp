#include "placement/provisioner.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>

#include "check/check.h"
#include "check/validators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/sd_solver.h"

namespace vcopt::placement {

namespace {

struct ProvisionerMetrics {
  obs::Counter& grants;
  obs::Counter& rejections;
  obs::Counter& queued;
  obs::Gauge& queue_depth;
  obs::Counter& reject_empty;
  obs::Counter& reject_shape;
  obs::Counter& reject_over_capacity;
  obs::Counter& ladder_exact;
  obs::Counter& ladder_heuristic;
  obs::Counter& ladder_partial;
  obs::Counter& ladder_abandoned;
  obs::Gauge& ladder_ilp_ms;
  obs::HistogramMetric& queue_wait;

  static ProvisionerMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ProvisionerMetrics m{
        reg.counter("provisioner/grants"),
        reg.counter("provisioner/rejections"),
        reg.counter("provisioner/queued"),
        reg.gauge("provisioner/queue_depth"),
        reg.counter("provisioner/reject_empty"),
        reg.counter("provisioner/reject_shape"),
        reg.counter("provisioner/reject_over_capacity"),
        reg.counter("provisioner/ladder_exact"),
        reg.counter("provisioner/ladder_heuristic"),
        reg.counter("provisioner/ladder_partial"),
        reg.counter("provisioner/ladder_abandoned"),
        reg.gauge("provisioner/ladder_ilp_ms"),
        reg.histogram("provisioner/queue_wait_time",
                      obs::MetricsRegistry::exponential_buckets(0.001, 2.0, 24)),
    };
    return m;
  }
};

/// Best-effort partial fill: up to min(R_j, sum_i L_ij) VMs per type, taken
/// nearest-first from the anchor node with the largest remaining capacity
/// (ties: lowest index).  Deterministic; always succeeds at placing exactly
/// that many VMs, which is fewer than requested iff availability is short.
cluster::Allocation best_effort_fill(const cluster::Request& r,
                                     const util::IntMatrix& remaining,
                                     const cluster::Topology& topology) {
  const std::size_t n = remaining.rows();
  const std::size_t m = remaining.cols();
  std::size_t anchor = 0;
  int anchor_cap = -1;
  for (std::size_t i = 0; i < n; ++i) {
    int cap = 0;
    for (std::size_t j = 0; j < m; ++j) cap += remaining(i, j);
    if (cap > anchor_cap) {
      anchor_cap = cap;
      anchor = i;
    }
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const util::DoubleMatrix& dist = topology.distance_matrix();
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return dist(anchor, a) < dist(anchor, b);
                   });
  cluster::Allocation alloc(n, m);
  for (std::size_t j = 0; j < m; ++j) {
    int want = r.count(j);
    for (std::size_t i : order) {
      if (want == 0) break;
      const int take = std::min(want, remaining(i, j));
      if (take > 0) {
        alloc.add(i, j, take);
        want -= take;
      }
    }
  }
  return alloc;
}

/// The final ladder rung: best-effort partial fill (or kAbandoned), written
/// into `plan`.
LadderPlan& plan_partial(const cluster::Request& r,
                         const LadderOptions& options,
                         const util::IntMatrix& remaining,
                         const cluster::Topology& topology, LadderPlan& plan) {
  auto& m = ProvisionerMetrics::get();
  if (options.allow_partial) {
    cluster::Allocation partial = best_effort_fill(r, remaining, topology);
    if (partial.total_vms() > 0) {
      Placement placed =
          evaluate(std::move(partial), topology.distance_matrix());
      // Grant exactly what was placed: the lease's request is the clipped
      // vector, so Def. 2 feasibility holds for the partial grant too.
      std::vector<int> placed_counts(placed.allocation.type_count());
      for (std::size_t j = 0; j < placed_counts.size(); ++j) {
        placed_counts[j] = placed.allocation.vms_of_type(j);
      }
      cluster::Request effective(std::move(placed_counts), r.id(),
                                 r.priority());
      VCOPT_VALIDATE(check::validate_allocation(
          placed.allocation.counts(), effective.counts(), remaining));
      plan.granted_vms = placed.allocation.total_vms();
      plan.placement = std::move(placed);
      plan.effective = std::move(effective);
      plan.status = PlacementStatus::kPartial;
      m.ladder_partial.add();
      return plan;
    }
  }
  plan.status = PlacementStatus::kAbandoned;
  m.ladder_abandoned.add();
  return plan;
}

}  // namespace

const char* to_string(PlacementStatus s) {
  switch (s) {
    case PlacementStatus::kGranted: return "granted";
    case PlacementStatus::kQueued: return "queued";
    case PlacementStatus::kRejectedEmpty: return "rejected-empty";
    case PlacementStatus::kRejectedShape: return "rejected-shape";
    case PlacementStatus::kRejectedOverCapacity: return "rejected-over-capacity";
    case PlacementStatus::kRepaired: return "repaired";
    case PlacementStatus::kDegraded: return "degraded";
    case PlacementStatus::kPartial: return "partial";
    case PlacementStatus::kAbandoned: return "abandoned";
  }
  return "?";
}

bool is_terminal(PlacementStatus s) { return s != PlacementStatus::kQueued; }

const char* to_string(QueueDiscipline d) {
  switch (d) {
    case QueueDiscipline::kFifo: return "fifo";
    case QueueDiscipline::kPriority: return "priority";
    case QueueDiscipline::kSmallestFirst: return "smallest-first";
  }
  return "?";
}

Provisioner::Provisioner(cluster::Cloud& cloud,
                         std::unique_ptr<PlacementPolicy> policy,
                         QueueDiscipline discipline)
    : cloud_(cloud), policy_(std::move(policy)), discipline_(discipline) {
  if (!policy_) throw std::invalid_argument("Provisioner: null policy");
}

void Provisioner::set_now(double now) { now_ = std::max(now_, now); }

std::size_t Provisioner::next_in_queue() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    switch (discipline_) {
      case QueueDiscipline::kFifo:
        return 0;
      case QueueDiscipline::kPriority:
        if (queue_[i].request.priority() > queue_[best].request.priority()) {
          best = i;
        }
        break;
      case QueueDiscipline::kSmallestFirst:
        if (queue_[i].request.total_vms() < queue_[best].request.total_vms()) {
          best = i;
        }
        break;
    }
  }
  return best;
}

std::optional<Grant> Provisioner::try_place_and_grant(const cluster::Request& r) {
  auto placed = policy_->place(r, cloud_.remaining(), cloud_.topology());
  if (!placed) return std::nullopt;
  // Catch a misbehaving policy with a contextual dump BEFORE the grant
  // mutates the inventory (which would only throw a bare invalid_argument).
  VCOPT_VALIDATE(check::validate_allocation(placed->allocation.counts(),
                                            r.counts(), cloud_.remaining()));
  const cluster::LeaseId lease = cloud_.grant(r, placed->allocation);
  ProvisionerMetrics::get().grants.add();
  return Grant{lease, r.id(), std::move(*placed)};
}

void Provisioner::enqueue(const cluster::Request& r) {
  queue_.push_back(Waiting{r, now_});
  auto& m = ProvisionerMetrics::get();
  m.queued.add();
  m.queue_depth.set(static_cast<double>(queue_.size()));
}

std::optional<Grant> Provisioner::request(const cluster::Request& r) {
  ProvisionResult res = submit(r);
  if (res.status == PlacementStatus::kRejectedShape) {
    throw std::invalid_argument("Provisioner::request: type count mismatch");
  }
  return std::move(res.grant);
}

ProvisionResult Provisioner::submit(const cluster::Request& r) {
  VCOPT_TRACE_SPAN("provisioner/request");
  auto& m = ProvisionerMetrics::get();
  ProvisionResult res;
  res.requested_vms = r.total_vms();
  if (r.type_count() != cloud_.type_count()) {
    res.status = PlacementStatus::kRejectedShape;
    m.reject_shape.add();
    return res;
  }
  if (r.empty()) {
    // A zero-VM request would produce a silently empty lease; reject it
    // loudly instead of tying up a lease id and a grant record.
    ++rejected_;
    res.status = PlacementStatus::kRejectedEmpty;
    m.reject_empty.add();
    m.rejections.add();
    return res;
  }
  switch (cloud_.admit(r)) {
    case cluster::Admission::kReject:
      ++rejected_;
      res.status = PlacementStatus::kRejectedOverCapacity;
      m.reject_over_capacity.add();
      m.rejections.add();
      return res;
    case cluster::Admission::kWait:
      enqueue(r);
      res.status = PlacementStatus::kQueued;
      return res;
    case cluster::Admission::kAccept:
      break;
  }
  // Strict FIFO fairness: while earlier requests are waiting, later arrivals
  // may not jump the queue even if they would fit right now.
  if (!queue_.empty()) {
    enqueue(r);
    res.status = PlacementStatus::kQueued;
    return res;
  }
  auto grant = try_place_and_grant(r);
  if (!grant) {
    // Aggregate availability was sufficient but the policy could not build
    // an allocation (should not happen for the built-in policies; keep the
    // request queued rather than dropping it).
    enqueue(r);
    res.status = PlacementStatus::kQueued;
    return res;
  }
  res.granted_vms = grant->placement.allocation.total_vms();
  res.grant = std::move(grant);
  res.status = PlacementStatus::kGranted;
  return res;
}

LadderPlan plan_laddered(const cluster::Request& r,
                         const util::IntMatrix& remaining,
                         const cluster::Topology& topology,
                         const std::vector<int>& capacity_col_sums,
                         PlacementPolicy& policy,
                         const LadderOptions& options) {
  auto& m = ProvisionerMetrics::get();
  LadderPlan plan;
  plan.requested_vms = r.total_vms();
  if (r.type_count() != capacity_col_sums.size()) {
    plan.status = PlacementStatus::kRejectedShape;
    m.reject_shape.add();
    return plan;
  }
  if (r.empty()) {
    plan.status = PlacementStatus::kRejectedEmpty;
    m.reject_empty.add();
    return plan;
  }
  // Inventory::admit's kReject rung verbatim: some type exceeds total
  // capacity (which includes drained/failed nodes), so the request can
  // never be served.
  for (std::size_t j = 0; j < capacity_col_sums.size(); ++j) {
    if (r.count(j) > capacity_col_sums[j]) {
      plan.status = PlacementStatus::kRejectedOverCapacity;
      m.reject_over_capacity.add();
      return plan;
    }
  }

  auto take = [&](Placement placed, PlacementStatus status,
                  cluster::Request effective) {
    VCOPT_VALIDATE(check::validate_allocation(placed.allocation.counts(),
                                              effective.counts(), remaining));
    plan.granted_vms = placed.allocation.total_vms();
    plan.placement = std::move(placed);
    plan.effective = std::move(effective);
    plan.status = status;
  };

  // Rung 1: the exact ILP, under a wall-clock budget.  The search itself is
  // bounded by the B&B node budget (there is no mid-search deadline), so the
  // wall clock decides how the result is *classified*: a proven optimum
  // within budget is kGranted; a truncated or over-budget incumbent falls
  // through to the heuristic rung below.
  const std::size_t variables = topology.node_count() * r.type_count();
  if (options.ilp_budget_ms > 0 && variables <= options.ilp_max_variables) {
    solver::IlpOptions ilp;
    ilp.max_nodes = options.ilp_max_nodes;
    const auto t0 = std::chrono::steady_clock::now();
    const solver::SdResult exact =
        solver::solve_sd_ilp(r, remaining, topology.distance_matrix(), ilp);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    m.ladder_ilp_ms.set(ms);
    if (exact.feasible && ms <= options.ilp_budget_ms) {
      m.ladder_exact.add();
      take(Placement{exact.allocation, exact.central, exact.distance},
           PlacementStatus::kGranted, r);
      return plan;
    }
    if (!exact.feasible) {
      // The exact solver is complete: no full allocation exists right now,
      // so skip the heuristic rung and go straight to best-effort partial.
      return plan_partial(r, options, remaining, topology, plan);
    }
  }

  // Rung 2: the caller's (heuristic) policy — a full allocation of unproven
  // optimality.
  if (auto placed = policy.place(r, remaining, topology)) {
    m.ladder_heuristic.add();
    take(std::move(*placed), PlacementStatus::kDegraded, r);
    return plan;
  }
  return plan_partial(r, options, remaining, topology, plan);
}

ProvisionResult Provisioner::submit_laddered(const cluster::Request& r,
                                             const LadderOptions& options) {
  VCOPT_TRACE_SPAN("provisioner/submit_laddered");
  const util::IntMatrix& max = cloud_.inventory().max_capacity();
  std::vector<int> capacity_col_sums(cloud_.type_count());
  for (std::size_t j = 0; j < capacity_col_sums.size(); ++j) {
    capacity_col_sums[j] = max.col_sum(j);
  }
  LadderPlan plan = plan_laddered(r, cloud_.remaining(), cloud_.topology(),
                                  capacity_col_sums, *policy_, options);
  ProvisionResult res;
  res.status = plan.status;
  res.requested_vms = plan.requested_vms;
  res.granted_vms = plan.granted_vms;
  if (plan.placement) {
    const cluster::LeaseId lease =
        cloud_.grant(*plan.effective, plan.placement->allocation);
    res.grant = Grant{lease, r.id(), std::move(*plan.placement)};
    ProvisionerMetrics::get().grants.add();
  }
  return res;
}

std::vector<Grant> Provisioner::release(cluster::LeaseId lease) {
  VCOPT_TRACE_SPAN("provisioner/release");
  cloud_.release(lease);
  std::vector<Grant> grants;
  // Drain in discipline order; stop at the first candidate that still
  // cannot be served (head-of-line blocking within the discipline keeps the
  // service order starvation-transparent).
  auto& m = ProvisionerMetrics::get();
  while (!queue_.empty()) {
    const std::size_t pick = next_in_queue();
    const Waiting& head = queue_[pick];
    if (cloud_.admit(head.request) != cluster::Admission::kAccept) break;
    auto grant = try_place_and_grant(head.request);
    if (!grant) break;
    m.queue_wait.observe(now_ - head.enqueued_at);
    grants.push_back(std::move(*grant));
    queue_.erase(queue_.begin() + static_cast<long>(pick));
  }
  m.queue_depth.set(static_cast<double>(queue_.size()));
  return grants;
}

std::vector<Grant> Provisioner::drain_batch_global() {
  if (queue_.empty()) return {};
  std::vector<cluster::Request> batch;
  batch.reserve(queue_.size());
  for (const Waiting& w : queue_) batch.push_back(w.request);
  GlobalSubOpt global;
  BatchPlacement placed =
      global.place_batch(batch, cloud_.remaining(), cloud_.topology());

  auto& m = ProvisionerMetrics::get();
  std::vector<Grant> grants;
  std::vector<bool> served(batch.size(), false);
  for (std::size_t t = 0; t < placed.admitted.size(); ++t) {
    const std::size_t idx = placed.admitted[t];
    VCOPT_VALIDATE(check::validate_allocation(
        placed.placements[t].allocation.counts(), batch[idx].counts(),
        cloud_.remaining()));
    const cluster::LeaseId lease =
        cloud_.grant(batch[idx], placed.placements[t].allocation);
    m.queue_wait.observe(now_ - queue_[idx].enqueued_at);
    grants.push_back(Grant{lease, batch[idx].id(), placed.placements[t]});
    served[idx] = true;
  }
  std::deque<Waiting> rest;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!served[i]) rest.push_back(std::move(queue_[i]));
  }
  queue_ = std::move(rest);
  m.grants.add(grants.size());
  m.queue_depth.set(static_cast<double>(queue_.size()));
  return grants;
}

}  // namespace vcopt::placement
