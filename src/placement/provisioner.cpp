#include "placement/provisioner.h"

#include <stdexcept>

#include "check/check.h"
#include "check/validators.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vcopt::placement {

namespace {

struct ProvisionerMetrics {
  obs::Counter& grants;
  obs::Counter& rejections;
  obs::Counter& queued;
  obs::Gauge& queue_depth;

  static ProvisionerMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ProvisionerMetrics m{
        reg.counter("provisioner/grants"),
        reg.counter("provisioner/rejections"),
        reg.counter("provisioner/queued"),
        reg.gauge("provisioner/queue_depth"),
    };
    return m;
  }
};

}  // namespace

const char* to_string(QueueDiscipline d) {
  switch (d) {
    case QueueDiscipline::kFifo: return "fifo";
    case QueueDiscipline::kPriority: return "priority";
    case QueueDiscipline::kSmallestFirst: return "smallest-first";
  }
  return "?";
}

Provisioner::Provisioner(cluster::Cloud& cloud,
                         std::unique_ptr<PlacementPolicy> policy,
                         QueueDiscipline discipline)
    : cloud_(cloud), policy_(std::move(policy)), discipline_(discipline) {
  if (!policy_) throw std::invalid_argument("Provisioner: null policy");
}

std::size_t Provisioner::next_in_queue() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    switch (discipline_) {
      case QueueDiscipline::kFifo:
        return 0;
      case QueueDiscipline::kPriority:
        if (queue_[i].priority() > queue_[best].priority()) best = i;
        break;
      case QueueDiscipline::kSmallestFirst:
        if (queue_[i].total_vms() < queue_[best].total_vms()) best = i;
        break;
    }
  }
  return best;
}

std::optional<Grant> Provisioner::try_place_and_grant(const cluster::Request& r) {
  auto placed = policy_->place(r, cloud_.remaining(), cloud_.topology());
  if (!placed) return std::nullopt;
  // Catch a misbehaving policy with a contextual dump BEFORE the grant
  // mutates the inventory (which would only throw a bare invalid_argument).
  VCOPT_VALIDATE(check::validate_allocation(placed->allocation.counts(),
                                            r.counts(), cloud_.remaining()));
  const cluster::LeaseId lease = cloud_.grant(r, placed->allocation);
  ProvisionerMetrics::get().grants.add();
  return Grant{lease, r.id(), std::move(*placed)};
}

void Provisioner::enqueue(const cluster::Request& r) {
  queue_.push_back(r);
  auto& m = ProvisionerMetrics::get();
  m.queued.add();
  m.queue_depth.set(static_cast<double>(queue_.size()));
}

std::optional<Grant> Provisioner::request(const cluster::Request& r) {
  VCOPT_TRACE_SPAN("provisioner/request");
  switch (cloud_.admit(r)) {
    case cluster::Admission::kReject:
      ++rejected_;
      ProvisionerMetrics::get().rejections.add();
      return std::nullopt;
    case cluster::Admission::kWait:
      enqueue(r);
      return std::nullopt;
    case cluster::Admission::kAccept:
      break;
  }
  // Strict FIFO fairness: while earlier requests are waiting, later arrivals
  // may not jump the queue even if they would fit right now.
  if (!queue_.empty()) {
    enqueue(r);
    return std::nullopt;
  }
  auto grant = try_place_and_grant(r);
  if (!grant) {
    // Aggregate availability was sufficient but the policy could not build
    // an allocation (should not happen for the built-in policies; keep the
    // request queued rather than dropping it).
    enqueue(r);
    return std::nullopt;
  }
  return grant;
}

std::vector<Grant> Provisioner::release(cluster::LeaseId lease) {
  VCOPT_TRACE_SPAN("provisioner/release");
  cloud_.release(lease);
  std::vector<Grant> grants;
  // Drain in discipline order; stop at the first candidate that still
  // cannot be served (head-of-line blocking within the discipline keeps the
  // service order starvation-transparent).
  while (!queue_.empty()) {
    const std::size_t pick = next_in_queue();
    const cluster::Request& head = queue_[pick];
    if (cloud_.admit(head) != cluster::Admission::kAccept) break;
    auto grant = try_place_and_grant(head);
    if (!grant) break;
    grants.push_back(std::move(*grant));
    queue_.erase(queue_.begin() + static_cast<long>(pick));
  }
  ProvisionerMetrics::get().queue_depth.set(static_cast<double>(queue_.size()));
  return grants;
}

std::vector<Grant> Provisioner::drain_batch_global() {
  if (queue_.empty()) return {};
  std::vector<cluster::Request> batch(queue_.begin(), queue_.end());
  GlobalSubOpt global;
  BatchPlacement placed =
      global.place_batch(batch, cloud_.remaining(), cloud_.topology());

  std::vector<Grant> grants;
  std::vector<bool> served(batch.size(), false);
  for (std::size_t t = 0; t < placed.admitted.size(); ++t) {
    const std::size_t idx = placed.admitted[t];
    VCOPT_VALIDATE(check::validate_allocation(
        placed.placements[t].allocation.counts(), batch[idx].counts(),
        cloud_.remaining()));
    const cluster::LeaseId lease =
        cloud_.grant(batch[idx], placed.placements[t].allocation);
    grants.push_back(Grant{lease, batch[idx].id(), placed.placements[t]});
    served[idx] = true;
  }
  std::deque<cluster::Request> rest;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!served[i]) rest.push_back(batch[i]);
  }
  queue_ = std::move(rest);
  auto& m = ProvisionerMetrics::get();
  m.grants.add(grants.size());
  m.queue_depth.set(static_cast<double>(queue_.size()));
  return grants;
}

}  // namespace vcopt::placement
