#include "placement/baselines.h"

#include <algorithm>
#include <numeric>

#include "solver/sd_solver.h"

namespace vcopt::placement {

namespace {
bool availability_ok(const cluster::Request& request,
                     const util::IntMatrix& remaining) {
  for (std::size_t j = 0; j < remaining.cols(); ++j) {
    if (request.count(j) > remaining.col_sum(j)) return false;
  }
  return true;
}
}  // namespace

std::optional<Placement> FirstFitPolicy::place(const cluster::Request& request,
                                               const util::IntMatrix& remaining,
                                               const cluster::Topology& topology) {
  if (!availability_ok(request, remaining)) return std::nullopt;
  cluster::Allocation alloc(remaining.rows(), remaining.cols());
  std::vector<int> need = request.counts();
  for (std::size_t i = 0; i < remaining.rows(); ++i) {
    for (std::size_t j = 0; j < remaining.cols(); ++j) {
      const int take = std::min(need[j], remaining(i, j));
      if (take > 0) {
        alloc.at(i, j) = take;
        need[j] -= take;
      }
    }
  }
  return evaluate(std::move(alloc), topology.distance_matrix());
}

std::optional<Placement> SpreadPolicy::place(const cluster::Request& request,
                                             const util::IntMatrix& remaining,
                                             const cluster::Topology& topology) {
  if (!availability_ok(request, remaining)) return std::nullopt;
  cluster::Allocation alloc(remaining.rows(), remaining.cols());
  util::IntMatrix left = remaining;
  for (std::size_t j = 0; j < remaining.cols(); ++j) {
    for (int v = 0; v < request.count(j); ++v) {
      // Node with the most total free capacity that still has a type-j slot.
      std::size_t best = remaining.rows();
      int best_free = -1;
      for (std::size_t i = 0; i < remaining.rows(); ++i) {
        if (left(i, j) <= 0) continue;
        const int free = left.row_sum(i);
        if (free > best_free) {
          best_free = free;
          best = i;
        }
      }
      if (best == remaining.rows()) return std::nullopt;
      alloc.at(best, j) += 1;
      left(best, j) -= 1;
    }
  }
  return evaluate(std::move(alloc), topology.distance_matrix());
}

std::optional<Placement> RandomPolicy::place(const cluster::Request& request,
                                             const util::IntMatrix& remaining,
                                             const cluster::Topology& topology) {
  if (!availability_ok(request, remaining)) return std::nullopt;
  cluster::Allocation alloc(remaining.rows(), remaining.cols());
  util::IntMatrix left = remaining;
  for (std::size_t j = 0; j < remaining.cols(); ++j) {
    for (int v = 0; v < request.count(j); ++v) {
      std::vector<std::size_t> candidates;
      for (std::size_t i = 0; i < remaining.rows(); ++i) {
        if (left(i, j) > 0) candidates.push_back(i);
      }
      if (candidates.empty()) return std::nullopt;
      const std::size_t pick = candidates[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
      alloc.at(pick, j) += 1;
      left(pick, j) -= 1;
    }
  }
  return evaluate(std::move(alloc), topology.distance_matrix());
}

std::optional<Placement> SdExactPolicy::place(const cluster::Request& request,
                                              const util::IntMatrix& remaining,
                                              const cluster::Topology& topology) {
  const solver::SdResult res =
      solver::solve_sd_exact(request, remaining, topology.distance_matrix());
  if (!res.feasible) return std::nullopt;
  return Placement{res.allocation, res.central, res.distance};
}

}  // namespace vcopt::placement
