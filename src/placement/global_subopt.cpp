#include "placement/global_subopt.h"

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "check/check.h"
#include "check/validators.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vcopt::placement {

namespace {
constexpr double kEps = 1e-9;

// Per-swap distance improvement distribution (seconds of DC, really metres
// of the paper's distance metric) plus attempt/apply counters.
void record_transfer_metrics(std::size_t attempts, std::size_t applied,
                             double total_gain) {
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  static obs::Counter& attempted = reg.counter("placement/transfers_attempted");
  static obs::Counter& swaps = reg.counter("placement/transfers_applied");
  static obs::HistogramMetric& gain = reg.histogram(
      "placement/transfer_gain",
      obs::MetricsRegistry::exponential_buckets(0.25, 2.0, 12));
  attempted.add(attempts);
  swaps.add(applied);
  if (applied > 0) gain.observe(total_gain);
}

// One directional scan: move a VM that `a` parked on b's central node to a
// node where `b` holds a VM of the same type, and vice versa, whenever the
// triangle condition of Theorem 2 says the summed distance drops.
std::size_t transfer_directed(Placement& a, Placement& b,
                              const util::DoubleMatrix& dist,
                              double& gain_sum) {
  const std::size_t x = a.central;
  const std::size_t y = b.central;
  if (x == y) return 0;
  // Const views for all reads: the non-const accessors hand out raw
  // references and would invalidate the allocations' row/col sum caches.
  const cluster::Allocation& ca = a.allocation;
  const cluster::Allocation& cb = b.allocation;
  const std::size_t n = ca.node_count();
  const std::size_t m = ca.type_count();
  // D(x, y) is invariant across the whole scan — hoisted out of the loops.
  const double dxy = dist(x, y);
  std::size_t swaps = 0;
  for (std::size_t r = 0; r < m; ++r) {
    if (ca.at(y, r) == 0) continue;  // a parked nothing of type r on y
    // Skip type rows where b holds no VM outside y: the inner scan could
    // never find a swap partner.  O(1) via the cached column sums, which
    // Allocation::add keeps consistent across swaps.
    if (cb.vms_of_type(r) - cb.at(y, r) == 0) continue;
    while (ca.at(y, r) > 0) {
      // Find b's VM of type r on the node q (!= y) farthest from y: that is
      // the swap with the largest gain D(x,y) + D(y,q) - D(x,q).
      std::size_t best_q = n;
      double best_gain = kEps;
      for (std::size_t q = 0; q < n; ++q) {
        if (q == y || cb.at(q, r) == 0) continue;
        const double gain = dxy + dist(y, q) - dist(x, q);
        if (gain > best_gain) {
          best_gain = gain;
          best_q = q;
        }
      }
      if (best_q == n) break;
      // Swap the two VMs (conserves per-node/type totals across a+b).
      a.allocation.add(y, r, -1);
      a.allocation.add(best_q, r, 1);
      b.allocation.add(best_q, r, -1);
      b.allocation.add(y, r, 1);
      a.distance += dist(x, best_q) - dxy;
      b.distance += dist(y, y) - dist(y, best_q);
      gain_sum += best_gain;
      ++swaps;
    }
  }
  return swaps;
}

// Shared body of the two public transfer overloads.  `topology`, when
// non-null, routes the post-swap central recompute through the O(n) tiered
// scan; `dist` must then be topology->distance_matrix().
std::size_t transfer_impl(Placement& a, Placement& b,
                          const util::DoubleMatrix& dist,
                          const cluster::Topology* topology) {
#if VCOPT_ENABLE_CHECKS
  // Theorem 2 promises every swap strictly reduces the summed distance and
  // conserves per-node/per-type totals across the pair; capture the state
  // the promise is checked against.
  const double distance_before = a.distance + b.distance;
  const util::IntMatrix combined_before =
      a.allocation.counts() + b.allocation.counts();
#endif
  double gain_sum = 0;
  std::size_t swaps = transfer_directed(a, b, dist, gain_sum);
  swaps += transfer_directed(b, a, dist, gain_sum);
  record_transfer_metrics(1, swaps, gain_sum);
  if (swaps > 0) {
    // Allocations changed; the optimal central may have moved.
    const cluster::CentralNode ca =
        topology ? cluster::best_central_tiered(a.allocation, *topology)
                 : a.allocation.best_central(dist);
    a.central = ca.node;
    a.distance = ca.distance;
    const cluster::CentralNode cb =
        topology ? cluster::best_central_tiered(b.allocation, *topology)
                 : b.allocation.best_central(dist);
    b.central = cb.node;
    b.distance = cb.distance;
  }
#if VCOPT_ENABLE_CHECKS
  VCOPT_INVARIANT(gain_sum >= 0)
      << " Theorem-2 transfer applied a negative total gain " << gain_sum;
  VCOPT_INVARIANT(a.distance + b.distance <= distance_before + 1e-6)
      << " Theorem-2 transfer increased the summed distance: "
      << distance_before << " -> " << a.distance + b.distance;
  VCOPT_INVARIANT((a.allocation.counts() + b.allocation.counts()) ==
                  combined_before)
      << " Theorem-2 transfer did not conserve per-node/per-type totals:\n"
      << "before:\n" << combined_before << "\nafter:\n"
      << a.allocation.counts() + b.allocation.counts();
  VCOPT_VALIDATE(check::validate_reported_distance(a.allocation.counts(), dist,
                                                   a.central, a.distance));
  VCOPT_VALIDATE(check::validate_reported_distance(b.allocation.counts(), dist,
                                                   b.central, b.distance));
#endif
  return swaps;
}
}  // namespace

std::size_t GlobalSubOpt::transfer(Placement& a, Placement& b,
                                   const util::DoubleMatrix& dist) {
  return transfer_impl(a, b, dist, nullptr);
}

std::size_t GlobalSubOpt::transfer(Placement& a, Placement& b,
                                   const cluster::Topology& topology) {
  return transfer_impl(a, b, topology.distance_matrix(), &topology);
}

BatchPlacement GlobalSubOpt::place_batch(
    const std::vector<cluster::Request>& batch, const util::IntMatrix& remaining,
    const cluster::Topology& topology) {
  VCOPT_TRACE_SPAN("placement/batch_place");
  BatchPlacement out;
  util::IntMatrix avail = remaining;
  OnlineHeuristic online;

  // Steps 1+2: FIFO admission + per-request online placement, debiting
  // capacity after each grant.
  for (std::size_t idx = 0; idx < batch.size(); ++idx) {
    auto placed = online.place(batch[idx], avail, topology);
    if (!placed) continue;  // not enough capacity left: stays queued
    avail -= placed->allocation.counts();
    if (!avail.all_nonnegative()) {
      throw std::logic_error("GlobalSubOpt: policy oversubscribed capacity");
    }
    out.placements.push_back(std::move(*placed));
    out.admitted.push_back(idx);
  }

  // Step 3: pairwise Theorem-2 adjustment until a full pass applies no swap.
  //
  // Dirty-pair worklist: transfer() is a pure function of the two
  // placements, so a pair whose members are both unchanged since its last
  // scan would apply zero swaps again — skip it.  Each placement carries a
  // version bumped whenever a transfer mutates it; a pair is rescanned only
  // when at least one member's version moved past what the pair last saw.
  // Scan order within a round is unchanged (lexicographic i < j), so the
  // sequence of applied swaps — and the final placements — are identical
  // to the full O(P^2)-per-round sweep, minus the converged rescans.
  if (options_.apply_transfers && out.placements.size() > 1) {
    const std::size_t num_placed = out.placements.size();
    std::vector<std::uint64_t> version(num_placed, 1);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> last_scanned(
        num_placed * num_placed, {0, 0});
    std::size_t pairs_scanned = 0;
    std::size_t pairs_skipped = 0;
    for (std::size_t round = 0; round < options_.max_rounds; ++round) {
      std::size_t swaps = 0;
      for (std::size_t i = 0; i < num_placed; ++i) {
        for (std::size_t j = i + 1; j < num_placed; ++j) {
          auto& seen = last_scanned[i * num_placed + j];
          if (seen.first == version[i] && seen.second == version[j]) {
            ++pairs_skipped;
            continue;  // converged pair: both sides unchanged since last scan
          }
          ++pairs_scanned;
          // Record what this scan saw BEFORE bumping: a pair that applied
          // swaps changed its own members (centrals may have moved), so it
          // must stay dirty and be rescanned next round, exactly as the
          // full sweep would.
          seen = {version[i], version[j]};
          const std::size_t s =
              transfer(out.placements[i], out.placements[j], topology);
          if (s > 0) {
            ++version[i];
            ++version[j];
          }
          swaps += s;
        }
      }
      out.transfers_applied += swaps;
      if (swaps == 0) break;
    }
    auto& reg = obs::MetricsRegistry::global();
    if (reg.enabled()) {
      static obs::Counter& scanned =
          reg.counter("placement/transfer_pairs_scanned");
      static obs::Counter& skipped =
          reg.counter("placement/transfer_pairs_skipped");
      scanned.add(pairs_scanned);
      skipped.add(pairs_skipped);
    }
  }

  out.total_distance = 0;
  for (const Placement& pl : out.placements) out.total_distance += pl.distance;
  return out;
}

}  // namespace vcopt::placement
