// Affinity-aware VM migration (paper §VI(2): "affinity-aware virtual
// cluster VM migration technology is used to minimize the communication
// overhead"; §VII: recomputing placements when VMs are down/reconfigured).
//
// After churn, a virtual cluster can usually be tightened: capacity freed by
// departed tenants opens slots nearer its central node.  consolidate() hill-
// climbs with Theorem-1 moves — relocate one VM from the node farthest from
// the central node into free capacity on a strictly nearer node — until no
// improving move remains, re-evaluating the central node after each move.
// Every accepted move strictly reduces DC, so termination is guaranteed.
#pragma once

#include <cstddef>
#include <vector>

#include "placement/policy.h"

namespace vcopt::placement {

/// One VM relocation.
struct Migration {
  std::size_t from_node = 0;
  std::size_t to_node = 0;
  std::size_t type = 0;
};

struct ConsolidationResult {
  std::vector<Migration> migrations;
  double distance_before = 0;
  double distance_after = 0;

  double improvement() const { return distance_before - distance_after; }
};

struct ConsolidateOptions {
  /// Upper bound on migrations per cluster (live migration is not free);
  /// SIZE_MAX = unbounded.
  std::size_t max_migrations = SIZE_MAX;
};

/// Tightens `placement` in place, consuming/freeing capacity in `remaining`
/// (the matrix is updated to reflect the moves).  Returns the migration
/// plan.  The allocation keeps satisfying its request (moves preserve
/// per-type totals) and never oversubscribes `remaining`.
ConsolidationResult consolidate(Placement& placement,
                                util::IntMatrix& remaining,
                                const util::DoubleMatrix& dist,
                                const ConsolidateOptions& options = {});

}  // namespace vcopt::placement
