// Affinity-aware VM migration (paper §VI(2): "affinity-aware virtual
// cluster VM migration technology is used to minimize the communication
// overhead"; §VII: recomputing placements when VMs are down/reconfigured).
//
// After churn, a virtual cluster can usually be tightened: capacity freed by
// departed tenants opens slots nearer its central node.  consolidate() hill-
// climbs with Theorem-1 moves — relocate one VM from the node farthest from
// the central node into free capacity on a strictly nearer node — until no
// improving move remains, re-evaluating the central node after each move.
// Every accepted move strictly reduces DC, so termination is guaranteed.
#pragma once

#include <cstddef>
#include <vector>

#include "placement/policy.h"

namespace vcopt::placement {

/// One VM relocation.
struct Migration {
  std::size_t from_node = 0;
  std::size_t to_node = 0;
  std::size_t type = 0;
};

struct ConsolidationResult {
  std::vector<Migration> migrations;
  double distance_before = 0;
  double distance_after = 0;

  double improvement() const { return distance_before - distance_after; }
};

struct ConsolidateOptions {
  /// Upper bound on migrations per cluster (live migration is not free);
  /// SIZE_MAX = unbounded.
  std::size_t max_migrations = SIZE_MAX;
};

/// Tightens `placement` in place, consuming/freeing capacity in `remaining`
/// (the matrix is updated to reflect the moves).  Returns the migration
/// plan.  The allocation keeps satisfying its request (moves preserve
/// per-type totals) and never oversubscribes `remaining`.
ConsolidationResult consolidate(Placement& placement,
                                util::IntMatrix& remaining,
                                const util::DoubleMatrix& dist,
                                const ConsolidateOptions& options = {});

/// One accepted budgeted move: the relocation plus its DC gain (for the
/// central node at the moment the move was chosen) and the charged cost.
struct BudgetedMove {
  Migration move;
  double gain = 0;
  double cost = 0;
  double net() const { return gain - cost; }
};

struct BudgetedConsolidation {
  std::vector<BudgetedMove> moves;
  double distance_before = 0;
  double distance_after = 0;
  double total_cost = 0;

  double improvement() const { return distance_before - distance_after; }
};

/// Tuning for the economic variant below.
struct BudgetedConsolidateOptions {
  std::size_t max_migrations = SIZE_MAX;
  /// Data-movement cost charged per relocated VM, indexed by VM type (DC
  /// units — e.g. memory_gb * cost_per_gb + a shuffle-traffic term; the
  /// rebalancer builds this from cluster::VmType).  Empty = all zero, which
  /// reduces the scan to plain consolidate().
  std::vector<double> move_cost;
  /// A move is accepted only when gain - move_cost[type] exceeds this.
  double min_net_gain = 0;
};

/// Live-migration variant of consolidate() that treats each relocation as an
/// economic decision (Theorem 1/2 generalized to migration with a cost
/// budget): per step it picks the (donor, receiver, type) triple with the
/// highest NET gain — DC gain minus the per-type move cost — and stops when
/// no move nets more than `min_net_gain`.  Every accepted move still
/// strictly reduces DC by at least its gain, so termination is inherited
/// from consolidate(); with empty costs and min_net_gain 0 the move
/// sequence is identical to consolidate()'s.
BudgetedConsolidation consolidate_budgeted(
    Placement& placement, util::IntMatrix& remaining,
    const util::DoubleMatrix& dist,
    const BudgetedConsolidateOptions& options = {});

}  // namespace vcopt::placement
