// Placement-policy interface.  A policy maps (request, remaining capacity,
// topology distances) to an allocation; the provisioner and the cluster
// simulator are policy-agnostic.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/allocation.h"
#include "cluster/request.h"
#include "cluster/topology.h"
#include "util/matrix.h"

namespace vcopt::placement {

/// Allocation plus the evaluated cluster distance (Definition 1) and the
/// central node achieving it.
struct Placement {
  cluster::Allocation allocation;
  std::size_t central = 0;
  double distance = 0;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Computes an allocation for `request` against remaining capacity
  /// `remaining` and the distance matrix of `topology`.  Returns nullopt when
  /// the request cannot be satisfied from `remaining`.
  virtual std::optional<Placement> place(const cluster::Request& request,
                                         const util::IntMatrix& remaining,
                                         const cluster::Topology& topology) = 0;

  virtual std::string name() const = 0;
};

/// Evaluates an allocation into a Placement (best central + distance).
Placement evaluate(cluster::Allocation alloc, const util::DoubleMatrix& dist);

/// Factory for the built-in policies, keyed by name:
/// "online-heuristic", "sd-exact", "first-fit", "spread", "random[:seed]".
std::unique_ptr<PlacementPolicy> make_policy(const std::string& spec);

/// Names accepted by make_policy (without the random seed suffix).
std::vector<std::string> policy_names();

}  // namespace vcopt::placement
