// Baseline placement policies the paper's approach is compared against:
// affinity-oblivious strategies commonly used for load balancing.
#pragma once

#include "placement/policy.h"
#include "util/rng.h"

namespace vcopt::placement {

/// Places VMs on nodes in index order, packing each node before moving on.
/// Affinity-blind but tends to co-locate by accident on empty clouds.
class FirstFitPolicy : public PlacementPolicy {
 public:
  std::optional<Placement> place(const cluster::Request& request,
                                 const util::IntMatrix& remaining,
                                 const cluster::Topology& topology) override;
  std::string name() const override { return "first-fit"; }
};

/// Spreads VMs one at a time onto the node with the most free capacity
/// (classic load-balancing / anti-affinity): the adversarial baseline for
/// cluster distance.
class SpreadPolicy : public PlacementPolicy {
 public:
  std::optional<Placement> place(const cluster::Request& request,
                                 const util::IntMatrix& remaining,
                                 const cluster::Topology& topology) override;
  std::string name() const override { return "spread"; }
};

/// Places each VM on a uniformly random node with free capacity of the
/// right type.  Deterministic given the seed.
class RandomPolicy : public PlacementPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 1) : rng_(seed) {}
  std::optional<Placement> place(const cluster::Request& request,
                                 const util::IntMatrix& remaining,
                                 const cluster::Topology& topology) override;
  std::string name() const override { return "random"; }

 private:
  util::Rng rng_;
};

/// The exact SD optimum (per-central-node greedy scan), wrapped as a policy.
class SdExactPolicy : public PlacementPolicy {
 public:
  std::optional<Placement> place(const cluster::Request& request,
                                 const util::IntMatrix& remaining,
                                 const cluster::Topology& topology) override;
  std::string name() const override { return "sd-exact"; }
};

}  // namespace vcopt::placement
