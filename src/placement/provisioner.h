// Provisioner: ties a placement policy to a live Cloud.  Serves single
// requests (granting leases), keeps a FIFO wait queue for requests that do
// not fit, and drains the queue on release — optionally as a batch through
// Algorithm 2.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cloud.h"
#include "placement/global_subopt.h"
#include "placement/policy.h"

namespace vcopt::placement {

/// Result of a grant: the lease plus the evaluated placement.
struct Grant {
  cluster::LeaseId lease = 0;
  std::uint64_t request_id = 0;  ///< id of the Request this grant serves
  Placement placement;
};

/// Explicit terminal/interim status of a provisioning or repair attempt.
/// Every path through the provisioner and the fault/recovery layer ends in
/// one of these — never an assert, a silent empty allocation, or a dropped
/// request.
enum class PlacementStatus {
  kGranted,              ///< full allocation, optimal for the rung that made it
  kQueued,               ///< admissible later; waiting in the queue
  kRejectedEmpty,        ///< zero-VM request: nothing to place
  kRejectedShape,        ///< request/catalog type-count mismatch
  kRejectedOverCapacity, ///< exceeds total capacity; can never be served
  kRepaired,             ///< failure repair replaced every lost VM
  kDegraded,             ///< full allocation from a fallback rung (suboptimal)
  kPartial,              ///< best-effort allocation: fewer VMs than requested
  kAbandoned,            ///< nothing could be placed / repair gave up
};

const char* to_string(PlacementStatus s);
/// True for statuses that conclude an attempt (everything but kQueued).
bool is_terminal(PlacementStatus s);

/// Typed outcome of Provisioner::submit / submit_laddered.
struct ProvisionResult {
  PlacementStatus status = PlacementStatus::kAbandoned;
  std::optional<Grant> grant;  ///< set for kGranted/kDegraded/kPartial
  int requested_vms = 0;
  int granted_vms = 0;
};

/// Tuning for the graceful-degradation ladder (submit_laddered): exact ILP
/// under a wall-clock budget, then the online heuristic, then an explicit
/// best-effort partial allocation.
struct LadderOptions {
  double ilp_budget_ms = 50;        ///< wall-clock budget for the exact rung
  std::size_t ilp_max_nodes = 20000;  ///< B&B node budget within that time
  std::size_t ilp_max_variables = 4096;  ///< skip the exact rung above this
  bool allow_partial = true;        ///< false: failed full fits -> kAbandoned
};

/// A fully planned — but not yet granted — ladder outcome: the pure result
/// of plan_laddered.  `placement` and `effective` are set for the granting
/// statuses (kGranted / kDegraded / kPartial); actually applying the grant
/// (and obtaining a lease id) is the caller's job.
struct LadderPlan {
  PlacementStatus status = PlacementStatus::kAbandoned;
  std::optional<Placement> placement;
  /// The request the grant should be recorded under: the original request,
  /// or the clipped per-type counts for a kPartial plan.
  std::optional<cluster::Request> effective;
  int requested_vms = 0;
  int granted_vms = 0;
};

/// The graceful-degradation ladder as a pure function of a capacity view:
/// identical rung sequence to Provisioner::submit_laddered (shape -> empty
/// -> over-capacity -> budgeted exact ILP -> heuristic -> best-effort
/// partial) but reads only the arguments and mutates nothing, so the
/// snapshot-isolated serving path can evaluate it against an immutable
/// CloudSnapshot and commit the plan later.  `capacity_col_sums[j]` must be
/// sum_i M_ij (including drained/failed nodes) — the admit() kReject test.
/// Provisioner::submit_laddered routes through this function, so the two
/// can never diverge.
LadderPlan plan_laddered(const cluster::Request& r,
                         const util::IntMatrix& remaining,
                         const cluster::Topology& topology,
                         const std::vector<int>& capacity_col_sums,
                         PlacementPolicy& policy,
                         const LadderOptions& options = {});

/// Wait-queue service order (§III.C mentions FIFO and priority-based).
enum class QueueDiscipline {
  kFifo,           ///< arrival order, strict head-of-line blocking
  kPriority,       ///< highest Request::priority first (ties: arrival order)
  kSmallestFirst,  ///< fewest VMs first (reduces head-of-line blocking)
};

const char* to_string(QueueDiscipline d);

class Provisioner {
 public:
  Provisioner(cluster::Cloud& cloud, std::unique_ptr<PlacementPolicy> policy,
              QueueDiscipline discipline = QueueDiscipline::kFifo);

  /// Tries to serve a request immediately.  Returns the grant, or nullopt —
  /// the request was then either queued (admission kWait, or earlier
  /// requests are still waiting: strict FIFO, no queue-jumping) or rejected
  /// outright (zero VMs or over total capacity, counted in rejected_count()).
  /// Throws std::invalid_argument on a request/catalog shape mismatch.
  std::optional<Grant> request(const cluster::Request& r);

  /// Typed variant of request(): same queueing semantics, but the outcome is
  /// an explicit PlacementStatus (zero-VM and over-capacity requests get
  /// typed rejections recorded in metrics instead of an assert or a silent
  /// empty allocation).
  ProvisionResult submit(const cluster::Request& r);

  /// Graceful-degradation ladder: serve `r` NOW, degrading instead of
  /// queueing or failing silently.  Rungs: (1) exact SD ILP under
  /// `options.ilp_budget_ms` of wall clock -> kGranted (kDegraded if the
  /// node/time budget truncated the search and the incumbent is unproven);
  /// (2) the provisioner's online policy -> kDegraded; (3) best-effort
  /// partial allocation of min(R_j, available_j) VMs per type -> kPartial;
  /// otherwise kAbandoned.  Typed rejections as in submit().  The wait queue
  /// is bypassed by design — callers that want queueing use submit().
  ProvisionResult submit_laddered(const cluster::Request& r,
                                  const LadderOptions& options = {});

  /// Releases a lease and drains the wait queue in discipline order,
  /// stopping at the first unservable candidate (head-of-line blocking
  /// within the discipline).  Returns the grants made while draining.
  std::vector<Grant> release(cluster::LeaseId lease);

  /// Drains the wait queue as one batch via Algorithm 2 instead of FIFO
  /// single-request placement.
  std::vector<Grant> drain_batch_global();

  /// Advances the provisioner's clock (simulation or service seconds;
  /// monotonic — lower values are ignored).  The clock only timestamps wait-
  /// queue entries so `provisioner/queue_wait_time` can be observed when a
  /// queued request is finally served; callers that never set it record
  /// zero-length waits.
  void set_now(double now);
  double now() const { return now_; }

  std::size_t queue_length() const { return queue_.size(); }
  std::uint64_t rejected_count() const { return rejected_; }
  QueueDiscipline discipline() const { return discipline_; }
  const cluster::Cloud& cloud() const { return cloud_; }
  const PlacementPolicy& policy() const { return *policy_; }

 private:
  std::optional<Grant> try_place_and_grant(const cluster::Request& r);
  /// Appends to the wait queue and updates the queue-depth gauge.
  void enqueue(const cluster::Request& r);
  /// Index into queue_ of the next request under the discipline.
  std::size_t next_in_queue() const;

  /// A wait-queue entry: the request plus when it joined, so the wait time
  /// (provisioner/queue_wait_time) is known when it is finally served.
  struct Waiting {
    cluster::Request request;
    double enqueued_at = 0;
  };

  cluster::Cloud& cloud_;
  std::unique_ptr<PlacementPolicy> policy_;
  QueueDiscipline discipline_;
  std::deque<Waiting> queue_;  // in arrival order
  std::uint64_t rejected_ = 0;
  double now_ = 0;
};

}  // namespace vcopt::placement
