// Provisioner: ties a placement policy to a live Cloud.  Serves single
// requests (granting leases), keeps a FIFO wait queue for requests that do
// not fit, and drains the queue on release — optionally as a batch through
// Algorithm 2.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cloud.h"
#include "placement/global_subopt.h"
#include "placement/policy.h"

namespace vcopt::placement {

/// Result of a grant: the lease plus the evaluated placement.
struct Grant {
  cluster::LeaseId lease = 0;
  std::uint64_t request_id = 0;  ///< id of the Request this grant serves
  Placement placement;
};

/// Wait-queue service order (§III.C mentions FIFO and priority-based).
enum class QueueDiscipline {
  kFifo,           ///< arrival order, strict head-of-line blocking
  kPriority,       ///< highest Request::priority first (ties: arrival order)
  kSmallestFirst,  ///< fewest VMs first (reduces head-of-line blocking)
};

const char* to_string(QueueDiscipline d);

class Provisioner {
 public:
  Provisioner(cluster::Cloud& cloud, std::unique_ptr<PlacementPolicy> policy,
              QueueDiscipline discipline = QueueDiscipline::kFifo);

  /// Tries to serve a request immediately.  Returns the grant, or nullopt —
  /// the request was then either queued (admission kWait, or earlier
  /// requests are still waiting: strict FIFO, no queue-jumping) or rejected
  /// outright (admission kReject, counted in rejected_count()).
  std::optional<Grant> request(const cluster::Request& r);

  /// Releases a lease and drains the wait queue in discipline order,
  /// stopping at the first unservable candidate (head-of-line blocking
  /// within the discipline).  Returns the grants made while draining.
  std::vector<Grant> release(cluster::LeaseId lease);

  /// Drains the wait queue as one batch via Algorithm 2 instead of FIFO
  /// single-request placement.
  std::vector<Grant> drain_batch_global();

  std::size_t queue_length() const { return queue_.size(); }
  std::uint64_t rejected_count() const { return rejected_; }
  QueueDiscipline discipline() const { return discipline_; }
  const cluster::Cloud& cloud() const { return cloud_; }
  const PlacementPolicy& policy() const { return *policy_; }

 private:
  std::optional<Grant> try_place_and_grant(const cluster::Request& r);
  /// Appends to the wait queue and updates the queue-depth gauge.
  void enqueue(const cluster::Request& r);
  /// Index into queue_ of the next request under the discipline.
  std::size_t next_in_queue() const;

  cluster::Cloud& cloud_;
  std::unique_ptr<PlacementPolicy> policy_;
  QueueDiscipline discipline_;
  std::deque<cluster::Request> queue_;  // in arrival order
  std::uint64_t rejected_ = 0;
};

}  // namespace vcopt::placement
