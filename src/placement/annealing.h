// Simulated-annealing batch placement: a stronger (slower) global optimiser
// than Algorithm 2, used to quantify how much the paper's Theorem-2-only
// adjustment leaves on the table (see bench/ablation_annealing).
//
// Starts from Algorithm 2's solution and explores two move kinds:
//   * relocate — move one VM of one cluster to free capacity elsewhere,
//   * exchange — swap two same-type VMs between two clusters
// accepting worsening moves with the Metropolis criterion under a geometric
// cooling schedule.  All moves preserve per-request counts and capacity
// feasibility by construction; the final solution is therefore always
// feasible and never worse than the best state visited.
#pragma once

#include <cstdint>

#include "placement/global_subopt.h"

namespace vcopt::placement {

struct AnnealOptions {
  std::size_t iterations = 20000;
  double initial_temperature = 2.0;
  double cooling = 0.9995;  ///< geometric factor per iteration
  std::uint64_t seed = 1;
};

/// Anneals the batch placement.  Returns the best feasible solution found
/// (>= Algorithm 2's quality by construction: the search starts there and
/// tracks the incumbent).  Admission set matches GlobalSubOpt's.
BatchPlacement anneal_batch(const std::vector<cluster::Request>& batch,
                            const util::IntMatrix& remaining,
                            const cluster::Topology& topology,
                            const AnnealOptions& options = {});

}  // namespace vcopt::placement
