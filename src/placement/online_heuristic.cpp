#include "placement/online_heuristic.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "check/check.h"
#include "check/validators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/mutex.h"
#include "util/simd.h"

namespace vcopt::placement {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Below this many candidate centrals the fork/join overhead of the pool
// outweighs the scan itself, so Execution::kAuto stays serial.
constexpr std::size_t kAutoParallelMinCandidates = 64;

// Per-thread scratch for candidate evaluation.  All buffers are sized once
// per (n, m) shape and reused across candidates and place() calls, so the
// fill loop performs no heap allocation in steady state.  `alloc` holds the
// current candidate's partial allocation; the invariant is that every entry
// outside `touched`'s rows is zero (fills clear only the rows they wrote).
struct Workspace {
  std::size_t n = 0;
  std::size_t m = 0;
  std::vector<int> need;            // outstanding per-type demand
  std::vector<int> lx;              // central node's free-capacity row L[x]
  std::vector<std::int32_t> key;    // per-node com(L[x], L[i]) overlap sums
  std::vector<std::int32_t> soa;    // column-major copy of `remaining`
  std::vector<std::size_t> tier;    // candidate ordering within one tier
  std::vector<int> node_vms;        // VMs taken per node, current candidate
  std::vector<std::size_t> touched; // nodes written by the current candidate
  util::IntMatrix alloc;            // current candidate's allocation
  util::IntMatrix best_alloc;       // snapshot of the chunk's best candidate

  void prepare(std::size_t n_, std::size_t m_) {
    if (n == n_ && m == m_) return;
    n = n_;
    m = m_;
    need.assign(m, 0);
    lx.assign(m, 0);
    key.assign(n, 0);
    soa.assign(n * m, 0);
    node_vms.assign(n, 0);
    touched.clear();
    tier.reserve(n);
    alloc = util::IntMatrix(n, m, 0);
  }

  // Transposes `remaining` into `soa` (soa[j*n+i] = remaining(i,j)) so the
  // off-rack getList scoring can stream whole columns through
  // simd::accumulate_min_i32.  Called once per candidate scan; the matrix is
  // read-only for the scan's duration.
  void build_soa(const util::IntMatrix& remaining) {
    const std::vector<int>& flat = remaining.data();  // row-major
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = i * m;
      for (std::size_t j = 0; j < m; ++j) {
        soa[j * n + i] = static_cast<std::int32_t>(flat[row + j]);
      }
    }
  }
};

Workspace& local_workspace() {
  thread_local Workspace ws;
  return ws;
}

// The greedy fill of Algorithm 1 for one fixed central node, evaluated into
// ws.alloc.  Visits the central node, then rack-mates in descending
// com(L[x], L[i]) overlap (the paper's getList ordering), then off-rack
// nodes nearest-tier-first with the same overlap ordering inside each tier.
//
// `bound` enables Theorem-1-style pruning: the partial distance only grows
// as farther nodes are taken, so once it reaches `bound` the candidate can
// no longer strictly beat the incumbent (nor win the lowest-index tie-break
// — the incumbent always has a lower candidate index within a chunk) and
// the fill is abandoned.  Pass kInf to disable.
//
// On success, `final_distance` receives the exact distance from `central`,
// summed in ascending node order — the same FP evaluation order as
// Allocation::distance_from, so reported distances are bit-identical to an
// independent recomputation.
bool fill_candidate(const cluster::Request& request,
                    const util::IntMatrix& remaining,
                    const cluster::Topology& topology,
                    const util::DoubleMatrix& dist, std::size_t central,
                    double bound, Workspace& ws, double& final_distance,
                    bool& pruned) {
  pruned = false;

  // O(touched) reset of the previous candidate's writes.
  for (std::size_t i : ws.touched) {
    ws.node_vms[i] = 0;
    for (std::size_t j = 0; j < ws.m; ++j) ws.alloc(i, j) = 0;
  }
  ws.touched.clear();

  const std::vector<int>& req = request.counts();
  ws.need.assign(req.begin(), req.end());
  int outstanding = 0;
  for (int v : ws.need) outstanding += v;

  // Takes min(remaining[node], need) of each type; returns VMs taken.
  auto take = [&](std::size_t node) {
    int took = 0;
    for (std::size_t j = 0; j < ws.m; ++j) {
      const int t = std::min(ws.need[j], remaining(node, j));
      if (t > 0) {
        ws.alloc(node, j) = t;
        ws.need[j] -= t;
        took += t;
      }
    }
    if (took > 0) {
      ws.node_vms[node] = took;
      ws.touched.push_back(node);
      outstanding -= took;
    }
    return took;
  };

  // Computes the getList sort keys for the nodes currently in ws.tier:
  // key[i] = sum_j com(L[x], L[i])[j], against the cached central row.
  // Used for the (small) rack tier, where a per-node scalar loop beats
  // setting up column streams.
  auto compute_tier_keys = [&] {
    for (std::size_t i : ws.tier) {
      std::int32_t k = 0;
      for (std::size_t j = 0; j < ws.m; ++j) {
        k += std::min(ws.lx[j], remaining(i, j));
      }
      ws.key[i] = k;
    }
  };

  // Same keys for ALL nodes at once, streamed column-wise over the SoA copy
  // with simd::accumulate_min_i32.  Integer arithmetic in both paths, so the
  // values (and hence every downstream sort order) are identical to
  // compute_tier_keys.  Used for the off-rack tier, which is nearly the
  // whole cluster whenever it is needed at all.
  auto compute_all_keys = [&] {
    std::fill(ws.key.begin(), ws.key.end(), 0);
    for (std::size_t j = 0; j < ws.m; ++j) {
      if (ws.lx[j] > 0) {
        util::simd::accumulate_min_i32(ws.key.data(), ws.soa.data() + j * ws.n,
                                       static_cast<std::int32_t>(ws.lx[j]),
                                       ws.n);
      }
    }
  };

  // Step 1: the central node itself (com(L[x], R)); contributes distance 0.
  take(central);
  double running = 0;

  // Step 2: rack-mates — getList(D, x, 0).
  if (outstanding > 0) {
    for (std::size_t j = 0; j < ws.m; ++j) ws.lx[j] = remaining(central, j);
    ws.tier.clear();
    for (std::size_t i : topology.nodes_in_rack(topology.rack_of(central))) {
      if (i != central) ws.tier.push_back(i);
    }
    compute_tier_keys();
    std::sort(ws.tier.begin(), ws.tier.end(),
              [&](std::size_t a, std::size_t b) {
                if (ws.key[a] != ws.key[b]) return ws.key[a] > ws.key[b];
                return a < b;
              });
    for (std::size_t i : ws.tier) {
      const int took = take(i);
      if (took > 0) {
        running += static_cast<double>(took) * dist(i, central);
        if (outstanding == 0) break;
        if (running >= bound) {
          pruned = true;
          return false;
        }
      }
    }
  }

  // Step 3: off-rack nodes — getList(D, x, 1), nearer tiers first (same
  // cloud before cross-cloud) so Theorem 1 keeps applying, then the
  // capacity-overlap ordering inside each tier.  Only reached (and only
  // sorted) when the rack could not complete the request.
  if (outstanding > 0) {
    ws.tier.clear();
    for (std::size_t i = 0; i < ws.n; ++i) {
      if (!topology.same_rack(i, central)) ws.tier.push_back(i);
    }
    compute_all_keys();
    std::sort(ws.tier.begin(), ws.tier.end(),
              [&](std::size_t a, std::size_t b) {
                const double da = dist(a, central);
                const double db = dist(b, central);
                if (da != db) return da < db;
                if (ws.key[a] != ws.key[b]) return ws.key[a] > ws.key[b];
                return a < b;
              });
    for (std::size_t i : ws.tier) {
      const int took = take(i);
      if (took > 0) {
        running += static_cast<double>(took) * dist(i, central);
        if (outstanding == 0) break;
        if (running >= bound) {
          pruned = true;
          return false;
        }
      }
    }
  }

  if (outstanding > 0) return false;  // infeasible from this central

  // Exact distance in ascending node order (matches distance_from).
  std::sort(ws.touched.begin(), ws.touched.end());
  double d = 0;
  for (std::size_t i : ws.touched) {
    d += static_cast<double>(ws.node_vms[i]) * dist(i, central);
  }
  final_distance = d;
  return true;
}

// One flush per place() call; the candidate scan itself stays atomics-free.
void record_place_metrics(std::size_t candidates, std::size_t pruned,
                          bool found, bool parallel) {
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  static obs::Counter& placements = reg.counter("placement/placements");
  static obs::Counter& infeasible = reg.counter("placement/infeasible");
  static obs::Counter& evaluated = reg.counter("placement/candidates_evaluated");
  static obs::Counter& abandoned = reg.counter("placement/candidates_pruned");
  static obs::Counter& par_scans = reg.counter("placement/parallel_scans");
  evaluated.add(candidates);
  abandoned.add(pruned);
  if (parallel) par_scans.add();
  (found ? placements : infeasible).add();
}

}  // namespace

std::optional<cluster::Allocation> OnlineHeuristic::fill_from_central(
    const cluster::Request& request, const util::IntMatrix& remaining,
    const cluster::Topology& topology, std::size_t central) {
  if (topology.node_count() != remaining.rows() ||
      request.type_count() != remaining.cols()) {
    throw std::invalid_argument("fill_from_central: shape mismatch");
  }
  Workspace ws;
  ws.prepare(remaining.rows(), remaining.cols());
  ws.build_soa(remaining);
  double d = 0;
  bool was_pruned = false;
  if (!fill_candidate(request, remaining, topology, topology.distance_matrix(),
                      central, kInf, ws, d, was_pruned)) {
    return std::nullopt;
  }
  return cluster::Allocation(std::move(ws.alloc));
}

std::optional<Placement> OnlineHeuristic::place(
    const cluster::Request& request, const util::IntMatrix& remaining,
    const cluster::Topology& topology) {
  VCOPT_TRACE_SPAN("placement/online_place");
  const std::size_t n = remaining.rows();
  const std::size_t m = remaining.cols();
  // Shape check hoisted out of the per-candidate fill: validate once per
  // request instead of once per candidate central node.
  if (topology.node_count() != n || request.type_count() != m) {
    throw std::invalid_argument("OnlineHeuristic::place: shape mismatch");
  }

  // Admission precheck (lines 1-5 of Algorithm 1): total availability.
  // col_sum also warms `remaining`'s sum cache from this single thread,
  // before any pool worker touches the matrix read-only.
  for (std::size_t j = 0; j < m; ++j) {
    if (request.count(j) > remaining.col_sum(j)) {
      record_place_metrics(0, 0, false, false);
      return std::nullopt;
    }
  }

  const util::DoubleMatrix& dist = topology.distance_matrix();

  // Lines 9-14: if one node can host everything, distance is 0 — take it.
  for (std::size_t i = 0; i < n; ++i) {
    bool whole = true;
    for (std::size_t j = 0; j < m; ++j) {
      if (remaining(i, j) < request.count(j)) {
        whole = false;
        break;
      }
    }
    if (whole) {
      cluster::Allocation alloc(n, m);
      for (std::size_t j = 0; j < m; ++j) {
        alloc.at(i, j) = request.count(j);
      }
      record_place_metrics(1, 0, true, false);
      return Placement{std::move(alloc), i, 0.0};
    }
  }

  // Candidate central nodes: anything with free capacity.
  std::vector<std::size_t> candidates;
  candidates.reserve(n);
  for (std::size_t x = 0; x < n; ++x) {
    if (remaining.row_sum(x) > 0) candidates.push_back(x);
  }

  std::optional<Placement> best;

  if (mode_ == Mode::kFirstImprovement) {
    // Literal pseudocode behaviour: stop at the first candidate that
    // completes (the first feasible fill trivially improves on "nothing").
    Workspace& ws = local_workspace();
    ws.prepare(n, m);
    ws.build_soa(remaining);
    std::size_t evaluated = 0;
    for (std::size_t x : candidates) {
      ++evaluated;
      double d = 0;
      bool was_pruned = false;
      if (fill_candidate(request, remaining, topology, dist, x, kInf, ws, d,
                         was_pruned)) {
        best = Placement{cluster::Allocation(ws.alloc), x, d};
        break;
      }
    }
    record_place_metrics(evaluated, 0, best.has_value(), false);
  } else {
    // kBestOfAllStarts: every candidate is independent and read-only over
    // `remaining`, so scan chunks in parallel.  Each chunk keeps a local
    // incumbent (enabling the distance-bound pruning); chunk results merge
    // commutatively — lexicographic min of (distance, central index) — so
    // the winner is deterministic and bit-identical to the serial scan.
    util::ThreadPool& pool = pool_ ? *pool_ : util::ThreadPool::global();
    const bool parallel =
        execution_ != Execution::kSerial && pool.size() > 1 &&
        !pool.in_worker() &&
        (execution_ == Execution::kParallel ||
         candidates.size() >= kAutoParallelMinCandidates);

    util::Mutex merge_mu;
    bool found = false;
    double best_d = kInf;
    std::size_t best_central = 0;
    util::IntMatrix best_alloc;
    std::size_t evaluated = 0;
    std::size_t pruned = 0;

    auto scan_chunk = [&](std::size_t chunk_begin, std::size_t chunk_end) {
      Workspace& ws = local_workspace();
      ws.prepare(n, m);
      ws.build_soa(remaining);
      bool chunk_found = false;
      double chunk_d = kInf;
      std::size_t chunk_central = 0;
      std::size_t chunk_evaluated = 0;
      std::size_t chunk_pruned = 0;
      for (std::size_t idx = chunk_begin; idx < chunk_end; ++idx) {
        const std::size_t x = candidates[idx];
        ++chunk_evaluated;
        double d = 0;
        bool was_pruned = false;
        if (fill_candidate(request, remaining, topology, dist, x,
                           chunk_found ? chunk_d : kInf, ws, d, was_pruned)) {
          if (!chunk_found || d < chunk_d) {
            chunk_found = true;
            chunk_d = d;
            chunk_central = x;
            ws.best_alloc = ws.alloc;
          }
        } else if (was_pruned) {
          ++chunk_pruned;
        }
      }
      util::MutexLock lock(merge_mu);
      evaluated += chunk_evaluated;
      pruned += chunk_pruned;
      if (chunk_found &&
          (!found || chunk_d < best_d ||
           (chunk_d == best_d && chunk_central < best_central))) {
        found = true;
        best_d = chunk_d;
        best_central = chunk_central;
        best_alloc = ws.best_alloc;
      }
    };

    if (parallel) {
      pool.parallel_for(candidates.size(), scan_chunk);
    } else if (!candidates.empty()) {
      scan_chunk(0, candidates.size());
    }

    record_place_metrics(evaluated, pruned, found, parallel);
    if (found) {
      best = Placement{cluster::Allocation(std::move(best_alloc)), best_central,
                       best_d};
    }
  }

  if (best) {
    // Algorithm-1 exit contract: Def. 2 feasibility against the remaining
    // capacity we were given, and a reported distance that matches an
    // independent recomputation for the chosen central node.
    VCOPT_VALIDATE(check::validate_allocation(best->allocation.counts(),
                                              request.counts(), remaining));
    VCOPT_VALIDATE(check::validate_reported_distance(
        best->allocation.counts(), dist, best->central, best->distance));
  }
  return best;
}

}  // namespace vcopt::placement
