#include "placement/online_heuristic.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "check/check.h"
#include "check/validators.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vcopt::placement {

namespace {

// The paper's com(A, B): element-wise minimum.
std::vector<int> com(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> out(a.size());
  for (std::size_t j = 0; j < a.size(); ++j) out[j] = std::min(a[j], b[j]);
  return out;
}

std::vector<int> row_of(const util::IntMatrix& m, std::size_t i) {
  std::vector<int> out(m.cols());
  for (std::size_t j = 0; j < m.cols(); ++j) out[j] = m(i, j);
  return out;
}

// The paper's getList(D, x, flag) ordering key: nodes sorted by
// sum_j com(L[x], L[i])[j] in descending order (nodes whose free capacity
// best overlaps the central node's profile first).  Ties by index for
// determinism.
std::vector<std::size_t> sorted_candidates(const util::IntMatrix& remaining,
                                           std::size_t central,
                                           const std::vector<std::size_t>& nodes) {
  const std::vector<int> lx = row_of(remaining, central);
  std::vector<std::size_t> order = nodes;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto ka = com(lx, row_of(remaining, a));
    const auto kb = com(lx, row_of(remaining, b));
    return std::accumulate(ka.begin(), ka.end(), 0) >
           std::accumulate(kb.begin(), kb.end(), 0);
  });
  return order;
}

// Takes min(remaining[node], need) of each type onto `alloc`.
void take(cluster::Allocation& alloc, std::vector<int>& need,
          const util::IntMatrix& remaining, std::size_t node) {
  for (std::size_t j = 0; j < remaining.cols(); ++j) {
    const int t = std::min(need[j], remaining(node, j));
    if (t > 0) {
      alloc.at(node, j) += t;
      need[j] -= t;
    }
  }
}

bool satisfied(const std::vector<int>& need) {
  return std::all_of(need.begin(), need.end(), [](int v) { return v == 0; });
}

}  // namespace

std::optional<cluster::Allocation> OnlineHeuristic::fill_from_central(
    const cluster::Request& request, const util::IntMatrix& remaining,
    const cluster::Topology& topology, std::size_t central) {
  const std::size_t n = remaining.rows();
  const std::size_t m = remaining.cols();
  if (topology.node_count() != n || request.type_count() != m) {
    throw std::invalid_argument("fill_from_central: shape mismatch");
  }

  cluster::Allocation alloc(n, m);
  std::vector<int> need = request.counts();

  // Step 1: the central node itself (com(L[x], R)).
  take(alloc, need, remaining, central);
  if (satisfied(need)) return alloc;

  // Step 2: rack-mates — getList(D, x, 0).
  std::vector<std::size_t> rack_mates;
  for (std::size_t i : topology.nodes_in_rack(topology.rack_of(central))) {
    if (i != central) rack_mates.push_back(i);
  }
  for (std::size_t i : sorted_candidates(remaining, central, rack_mates)) {
    take(alloc, need, remaining, i);
    if (satisfied(need)) return alloc;
  }

  // Step 3: off-rack nodes — getList(D, x, 1).  Visit nearer tiers first
  // (same cloud before cross-cloud) so Theorem 1 keeps applying, then the
  // capacity-overlap ordering inside each tier.
  std::vector<std::size_t> off_rack;
  for (std::size_t i = 0; i < n; ++i) {
    if (!topology.same_rack(i, central)) off_rack.push_back(i);
  }
  std::vector<std::size_t> sorted = sorted_candidates(remaining, central, off_rack);
  std::stable_sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
    return topology.distance(a, central) < topology.distance(b, central);
  });
  for (std::size_t i : sorted) {
    take(alloc, need, remaining, i);
    if (satisfied(need)) return alloc;
  }
  return std::nullopt;
}

namespace {

// One flush per place() call; the candidate scan itself stays atomics-free.
void record_place_metrics(std::size_t candidates, bool found) {
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  static obs::Counter& placements = reg.counter("placement/placements");
  static obs::Counter& infeasible = reg.counter("placement/infeasible");
  static obs::Counter& evaluated = reg.counter("placement/candidates_evaluated");
  evaluated.add(candidates);
  (found ? placements : infeasible).add();
}

}  // namespace

std::optional<Placement> OnlineHeuristic::place(
    const cluster::Request& request, const util::IntMatrix& remaining,
    const cluster::Topology& topology) {
  VCOPT_TRACE_SPAN("placement/online_place");
  const std::size_t n = remaining.rows();
  // Admission precheck (lines 1-5 of Algorithm 1): total availability.
  for (std::size_t j = 0; j < remaining.cols(); ++j) {
    if (request.count(j) > remaining.col_sum(j)) {
      record_place_metrics(0, false);
      return std::nullopt;
    }
  }

  const util::DoubleMatrix& dist = topology.distance_matrix();

  // Lines 9-14: if one node can host everything, distance is 0 — take it.
  for (std::size_t i = 0; i < n; ++i) {
    bool whole = true;
    for (std::size_t j = 0; j < remaining.cols(); ++j) {
      if (remaining(i, j) < request.count(j)) {
        whole = false;
        break;
      }
    }
    if (whole) {
      cluster::Allocation alloc(n, remaining.cols());
      for (std::size_t j = 0; j < remaining.cols(); ++j) {
        alloc.at(i, j) = request.count(j);
      }
      record_place_metrics(1, true);
      return Placement{std::move(alloc), i, 0.0};
    }
  }

  std::optional<Placement> best;
  std::size_t candidates = 0;
  for (std::size_t x = 0; x < n; ++x) {
    if (remaining.row_sum(x) == 0) continue;  // empty node: useless start
    ++candidates;
    auto alloc = fill_from_central(request, remaining, topology, x);
    if (!alloc) continue;
    const double d = alloc->distance_from(x, dist);
    if (!best || d < best->distance) {
      best = Placement{std::move(*alloc), x, d};
      if (mode_ == Mode::kFirstImprovement) break;
    }
  }
  record_place_metrics(candidates, best.has_value());
  if (best) {
    // Algorithm-1 exit contract: Def. 2 feasibility against the remaining
    // capacity we were given, and a reported distance that matches an
    // independent recomputation for the chosen central node.
    VCOPT_VALIDATE(check::validate_allocation(best->allocation.counts(),
                                              request.counts(), remaining));
    VCOPT_VALIDATE(check::validate_reported_distance(
        best->allocation.counts(), dist, best->central, best->distance));
  }
  return best;
}

}  // namespace vcopt::placement
