#include "sim/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vcopt::sim {

namespace {
constexpr double kRateEps = 1e-9;
}

void NetworkConfig::validate() const {
  if (node_bw <= 0 || disk_bw <= 0 || rack_bw <= 0 || wan_bw <= 0) {
    throw std::invalid_argument("NetworkConfig: bandwidths must be positive");
  }
  if (latency_per_distance < 0) {
    throw std::invalid_argument("NetworkConfig: negative latency");
  }
}

double TrafficStats::non_local_fraction() const {
  const double t = total();
  if (t == 0) return 0;
  return (t - local_bytes) / t;
}

Network::Network(const cluster::Topology& topology, NetworkConfig config,
                 EventQueue& queue)
    : topo_(topology), cfg_(config), queue_(queue) {
  cfg_.validate();
  const std::size_t n = topo_.node_count();
  const std::size_t r = topo_.rack_count();
  const std::size_t c = topo_.cloud_count();
  disk_base_ = 0;
  up_base_ = disk_base_ + n;
  down_base_ = up_base_ + n;
  rack_up_base_ = down_base_ + n;
  rack_down_base_ = rack_up_base_ + r;
  wan_up_base_ = rack_down_base_ + r;
  wan_down_base_ = wan_up_base_ + c;
  link_capacity_.assign(wan_down_base_ + c, 0);
  for (std::size_t i = 0; i < n; ++i) {
    link_capacity_[disk_base_ + i] = cfg_.disk_bw;
    link_capacity_[up_base_ + i] = cfg_.node_bw;
    link_capacity_[down_base_ + i] = cfg_.node_bw;
  }
  for (std::size_t i = 0; i < r; ++i) {
    link_capacity_[rack_up_base_ + i] = cfg_.rack_bw;
    link_capacity_[rack_down_base_ + i] = cfg_.rack_bw;
  }
  for (std::size_t i = 0; i < c; ++i) {
    link_capacity_[wan_up_base_ + i] = cfg_.wan_bw;
    link_capacity_[wan_down_base_ + i] = cfg_.wan_bw;
  }
}

std::vector<std::size_t> Network::path_links(std::size_t src,
                                             std::size_t dst) const {
  if (src >= topo_.node_count() || dst >= topo_.node_count()) {
    throw std::out_of_range("Network: node id out of range");
  }
  std::vector<std::size_t> links;
  if (src == dst) {
    links.push_back(disk_base_ + src);
    return links;
  }
  links.push_back(up_base_ + src);
  if (!topo_.same_rack(src, dst)) {
    links.push_back(rack_up_base_ + topo_.rack_of(src));
    if (!topo_.same_cloud(src, dst)) {
      links.push_back(wan_up_base_ + topo_.cloud_of(src));
      links.push_back(wan_down_base_ + topo_.cloud_of(dst));
    }
    links.push_back(rack_down_base_ + topo_.rack_of(dst));
  }
  links.push_back(down_base_ + dst);
  return links;
}

double Network::path_min_bw(std::size_t src, std::size_t dst) const {
  double bw = std::numeric_limits<double>::infinity();
  for (std::size_t l : path_links(src, dst)) bw = std::min(bw, link_capacity_[l]);
  return bw;
}

std::vector<Network::LinkUtilization> Network::link_utilization() const {
  std::vector<double> usage(link_capacity_.size(), 0.0);
  for (const Flow& f : flows_) {
    for (std::size_t l : f.links) usage[l] += f.rate;
  }
  auto name_of = [this](std::size_t l) -> std::string {
    if (l >= wan_down_base_) return "cloud" + std::to_string(l - wan_down_base_) + ".down";
    if (l >= wan_up_base_) return "cloud" + std::to_string(l - wan_up_base_) + ".up";
    if (l >= rack_down_base_) return "rack" + std::to_string(l - rack_down_base_) + ".down";
    if (l >= rack_up_base_) return "rack" + std::to_string(l - rack_up_base_) + ".up";
    if (l >= down_base_) return "node" + std::to_string(l - down_base_) + ".down";
    if (l >= up_base_) return "node" + std::to_string(l - up_base_) + ".up";
    return "node" + std::to_string(l - disk_base_) + ".disk";
  };
  std::vector<LinkUtilization> out;
  out.reserve(link_capacity_.size());
  for (std::size_t l = 0; l < link_capacity_.size(); ++l) {
    out.push_back(LinkUtilization{name_of(l), link_capacity_[l], usage[l]});
  }
  return out;
}

double Network::residual_path_bandwidth(std::size_t a, std::size_t b) const {
  std::vector<double> usage(link_capacity_.size(), 0.0);
  for (const Flow& f : flows_) {
    for (std::size_t l : f.links) usage[l] += f.rate;
  }
  double residual = std::numeric_limits<double>::infinity();
  for (std::size_t l : path_links(a, b)) {
    residual = std::min(residual, std::max(0.0, link_capacity_[l] - usage[l]));
  }
  return residual;
}

double Network::measured_distance(std::size_t a, std::size_t b,
                                  double probe_bytes) const {
  // A probe on a saturated path would still get a max-min share once it
  // joins, so floor the residual at an equal share of the narrowest link.
  const double residual = residual_path_bandwidth(a, b);
  const double share =
      path_min_bw(a, b) / static_cast<double>(flows_.size() + 1);
  const double effective = std::max(residual, share);
  return cfg_.latency_per_distance * topo_.distance(a, b) +
         probe_bytes / effective;
}

util::DoubleMatrix Network::measured_distance_matrix(double probe_bytes) const {
  const std::size_t n = topo_.node_count();
  util::DoubleMatrix d(n, n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      d(a, b) = a == b ? 0.0 : measured_distance(a, b, probe_bytes);
    }
  }
  return d;
}

FlowId Network::start_flow(std::size_t src, std::size_t dst, double bytes,
                           FlowCallback on_complete) {
  if (bytes < 0) throw std::invalid_argument("Network::start_flow: bytes < 0");
  advance_flows();

  // Account traffic by tier up front (flows always run to completion).
  if (src == dst) stats_.local_bytes += bytes;
  else if (topo_.same_rack(src, dst)) stats_.rack_bytes += bytes;
  else if (topo_.same_cloud(src, dst)) stats_.cross_rack_bytes += bytes;
  else stats_.cross_cloud_bytes += bytes;

  const FlowId id = next_flow_++;
  const double latency = cfg_.latency_per_distance * topo_.distance(src, dst);
  if (bytes == 0) {
    queue_.schedule_in(latency, [cb = std::move(on_complete), id] { cb(id); });
    return id;
  }
  Flow f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.remaining = bytes;
  f.links = path_links(src, dst);
  // Fold the propagation latency in as a (tiny) fixed extra amount of time:
  // the completion event fires `latency` after the last byte is sent.
  f.on_complete = [this, latency, cb = std::move(on_complete)](FlowId fid) {
    if (latency > 0) {
      queue_.schedule_in(latency, [cb, fid] { cb(fid); });
    } else {
      cb(fid);
    }
  };
  flows_.push_back(std::move(f));
  recompute_rates();
  schedule_next_completion();
  return id;
}

double Network::flow_rate(FlowId id) const {
  for (const Flow& f : flows_) {
    if (f.id == id) return f.rate;
  }
  return 0;
}

void Network::advance_flows() {
  const double now = queue_.now();
  const double dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0) return;
  for (Flow& f : flows_) {
    f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
}

void Network::recompute_rates() {
  // Progressive filling: raise every unfrozen flow's rate uniformly until a
  // link saturates; freeze its flows; repeat.
  std::vector<double> remcap = link_capacity_;
  std::vector<bool> frozen(flows_.size(), false);
  for (Flow& f : flows_) f.rate = 0;
  std::size_t unfrozen = flows_.size();
  while (unfrozen > 0) {
    // Count unfrozen flows per link.
    std::vector<std::size_t> load(link_capacity_.size(), 0);
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      if (frozen[i]) continue;
      for (std::size_t l : flows_[i].links) ++load[l];
    }
    double inc = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < link_capacity_.size(); ++l) {
      if (load[l] > 0) {
        inc = std::min(inc, remcap[l] / static_cast<double>(load[l]));
      }
    }
    if (!std::isfinite(inc)) break;  // no unfrozen flow uses any link
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      if (!frozen[i]) flows_[i].rate += inc;
    }
    for (std::size_t l = 0; l < link_capacity_.size(); ++l) {
      remcap[l] -= inc * static_cast<double>(load[l]);
    }
    // Freeze flows crossing a saturated link.
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      if (frozen[i]) continue;
      for (std::size_t l : flows_[i].links) {
        if (remcap[l] <= kRateEps * link_capacity_[l]) {
          frozen[i] = true;
          --unfrozen;
          break;
        }
      }
    }
  }
}

void Network::schedule_next_completion() {
  if (pending_event_ != 0) {
    queue_.cancel(pending_event_);
    pending_event_ = 0;
  }
  if (flows_.empty()) return;
  double earliest = std::numeric_limits<double>::infinity();
  for (const Flow& f : flows_) {
    if (f.rate > kRateEps) {
      earliest = std::min(earliest, f.remaining / f.rate);
    }
  }
  if (!std::isfinite(earliest)) {
    throw std::logic_error("Network: active flows but no positive rate");
  }
  pending_event_ =
      queue_.schedule_in(earliest, [this] { on_completion_event(); });
}

void Network::on_completion_event() {
  pending_event_ = 0;
  advance_flows();
  // Collect and remove finished flows, then fire their callbacks (callbacks
  // may start new flows, so mutate the flow table first).
  std::vector<Flow> done;
  for (std::size_t i = 0; i < flows_.size();) {
    if (flows_[i].remaining <= kRateEps * std::max(1.0, flows_[i].rate)) {
      done.push_back(std::move(flows_[i]));
      flows_[i] = std::move(flows_.back());
      flows_.pop_back();
    } else {
      ++i;
    }
  }
  recompute_rates();
  schedule_next_completion();
  for (Flow& f : done) f.on_complete(f.id);
}

}  // namespace vcopt::sim
