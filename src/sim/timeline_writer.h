// CSV/table export of the cluster-sim state timeline (utilization and
// queue-depth over time).  Centralises the formatting that bench figures and
// vcopt_cli previously rebuilt ad hoc from ClusterSimResult::timeline.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sim/cluster_sim.h"
#include "util/table.h"

namespace vcopt::sim {

class TimelineWriter {
 public:
  /// `capacity_vms` > 0 adds a derived utilization column
  /// (allocated_vms / capacity_vms) to every row.
  explicit TimelineWriter(const std::vector<TimelineSample>& timeline,
                          int capacity_vms = 0);

  /// Column layout shared by both renderers: time, allocated_vms,
  /// queue_length, active_leases [, utilization].
  util::TableWriter to_table() const;

  void write_csv(std::ostream& os) const;
  /// Returns false if the file could not be opened/written.
  bool write_csv_file(const std::string& path) const;

 private:
  const std::vector<TimelineSample>& timeline_;
  int capacity_vms_;
};

}  // namespace vcopt::sim
