#include "sim/periodic.h"

#include <stdexcept>
#include <utility>

namespace vcopt::sim {

PeriodicTicker::PeriodicTicker(EventQueue& queue, double period,
                               double horizon, std::function<void()> tick)
    : queue_(queue), period_(period), horizon_(horizon),
      tick_(std::move(tick)) {
  if (period <= 0) {
    throw std::invalid_argument("PeriodicTicker: period must be positive");
  }
}

void PeriodicTicker::start() {
  if (running_) return;
  const double first = queue_.now() + period_;
  if (first > horizon_) return;
  running_ = true;
  pending_ = queue_.schedule(first, [this] { fire(); });
}

void PeriodicTicker::stop() {
  if (!running_) return;
  queue_.cancel(pending_);
  pending_ = 0;
  running_ = false;
}

void PeriodicTicker::fire() {
  if (!running_) return;
  ++ticks_;
  tick_();
  const double next = queue_.now() + period_;
  if (next > horizon_) {
    running_ = false;
    pending_ = 0;
    return;
  }
  pending_ = queue_.schedule(next, [this] { fire(); });
}

}  // namespace vcopt::sim
