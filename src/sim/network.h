// Flow-level network model over the hierarchical topology.
//
// Links: per-node full-duplex NIC (up/down), per-node disk channel for
// same-node transfers, per-rack switch uplink/downlink, per-cloud WAN
// uplink/downlink.  A transfer is a fluid flow along the link path between
// two nodes; concurrent flows share links by max-min fairness (progressive
// filling), recomputed whenever the flow set changes.  Completion time is
// bytes / achieved-rate plus a propagation latency proportional to the
// topology distance — the paper's "distance indicates latency" premise.
//
// This is the simulated substitute for the paper's physical testbed: it
// reproduces the property the evaluation depends on — transfers between
// distant nodes are slower and contend on shared uplinks — without modelling
// packets.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "sim/event_queue.h"

namespace vcopt::sim {

struct NetworkConfig {
  // Defaults model a 2012-era virtualised cluster: 1 Gb/s NICs shared by the
  // VMs of a node, rack uplinks oversubscribed >10:1 against ten 1 Gb/s
  // nodes (a single cross-rack flow already runs below NIC line rate — the
  // "slow link" of the paper's §I), a thinner inter-site pipe, and local
  // disk reads (page cache + sequential HDFS I/O) well above NIC speed so
  // that co-locating VMs is not punished on local reads.
  double node_bw = 125e6;        ///< NIC bandwidth, bytes/s (1 Gb/s)
  double disk_bw = 1000e6;       ///< same-node (disk/page-cache) channel, bytes/s
  double rack_bw = 100e6;        ///< rack switch up/downlink, bytes/s
  double wan_bw = 40e6;          ///< per-cloud WAN up/downlink, bytes/s
  double latency_per_distance = 0.0005;  ///< propagation s per unit distance

  void validate() const;
};

/// Byte counters split by how far the traffic travelled.
struct TrafficStats {
  double local_bytes = 0;        ///< same node
  double rack_bytes = 0;         ///< same rack, different node
  double cross_rack_bytes = 0;   ///< same cloud, different rack
  double cross_cloud_bytes = 0;

  double total() const {
    return local_bytes + rack_bytes + cross_rack_bytes + cross_cloud_bytes;
  }
  /// Fraction of traffic that left its source node.
  double non_local_fraction() const;
};

using FlowId = std::uint64_t;

class Network {
 public:
  using FlowCallback = std::function<void(FlowId)>;

  Network(const cluster::Topology& topology, NetworkConfig config,
          EventQueue& queue);

  /// Starts a fluid transfer of `bytes` from node `src` to node `dst`;
  /// `on_complete` fires (as a queue event) when the last byte lands.
  /// Zero-byte flows complete after just the propagation latency.
  FlowId start_flow(std::size_t src, std::size_t dst, double bytes,
                    FlowCallback on_complete);

  std::size_t active_flows() const { return flows_.size(); }
  const TrafficStats& stats() const { return stats_; }

  /// Current max-min rate of a flow (0 if unknown/finished).  For tests.
  double flow_rate(FlowId id) const;

  /// Future-work hook (paper §VII): an effective pairwise distance derived
  /// from the modelled transfer time of one `probe_bytes` transfer given the
  /// network's CURRENT load — latency plus serialisation through the
  /// narrowest *residual* capacity on the path (links saturated by active
  /// flows make their paths look far).  On an idle network this reduces to
  /// the static capacity estimate.
  double measured_distance(std::size_t a, std::size_t b,
                           double probe_bytes = 64e6) const;

  /// The full n x n measured-distance matrix under current load; a drop-in
  /// replacement for Topology::distance_matrix() in the exact SD solver,
  /// enabling load-aware placement (see bench/ext_dynamic_distance).
  util::DoubleMatrix measured_distance_matrix(double probe_bytes = 64e6) const;

  /// Bytes/s of residual (unclaimed) capacity on the narrowest link of the
  /// a -> b path, given the current max-min rate allocation.
  double residual_path_bandwidth(std::size_t a, std::size_t b) const;

  /// Snapshot of every link's capacity and currently claimed rate — the
  /// observability hook a bandwidth-aware controller would scrape.
  struct LinkUtilization {
    std::string name;    ///< e.g. "node3.up", "rack1.down", "cloud0.up"
    double capacity = 0; ///< bytes/s
    double used = 0;     ///< sum of max-min rates of flows crossing it
  };
  std::vector<LinkUtilization> link_utilization() const;

 private:
  struct Flow {
    FlowId id;
    std::size_t src;
    std::size_t dst;
    double remaining;
    double rate = 0;
    std::vector<std::size_t> links;
    FlowCallback on_complete;
  };

  std::vector<std::size_t> path_links(std::size_t src, std::size_t dst) const;
  double path_min_bw(std::size_t src, std::size_t dst) const;
  void advance_flows();       // debit elapsed-time progress at current rates
  void recompute_rates();     // progressive-filling max-min fairness
  void schedule_next_completion();
  void on_completion_event();

  const cluster::Topology& topo_;
  NetworkConfig cfg_;
  EventQueue& queue_;

  // Link capacity table; index = link id.
  std::vector<double> link_capacity_;
  std::size_t disk_base_, up_base_, down_base_, rack_up_base_, rack_down_base_,
      wan_up_base_, wan_down_base_;

  std::vector<Flow> flows_;
  FlowId next_flow_ = 1;
  double last_advance_ = 0;
  EventId pending_event_ = 0;
  TrafficStats stats_;
};

}  // namespace vcopt::sim
