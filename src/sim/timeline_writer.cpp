#include "sim/timeline_writer.h"

#include <fstream>

namespace vcopt::sim {

TimelineWriter::TimelineWriter(const std::vector<TimelineSample>& timeline,
                               int capacity_vms)
    : timeline_(timeline), capacity_vms_(capacity_vms) {}

util::TableWriter TimelineWriter::to_table() const {
  std::vector<std::string> headers{"time", "allocated_vms", "queue_length",
                                   "active_leases"};
  if (capacity_vms_ > 0) headers.push_back("utilization");
  util::TableWriter t(std::move(headers));
  for (const TimelineSample& s : timeline_) {
    t.row().cell(s.time, 3).cell(s.allocated_vms).cell(s.queue_length).cell(
        s.active_leases);
    if (capacity_vms_ > 0) {
      t.cell(static_cast<double>(s.allocated_vms) /
                 static_cast<double>(capacity_vms_),
             4);
    }
  }
  return t;
}

void TimelineWriter::write_csv(std::ostream& os) const {
  to_table().print_csv(os);
}

bool TimelineWriter::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  return bool(out);
}

}  // namespace vcopt::sim
