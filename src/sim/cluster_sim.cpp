#include "sim/cluster_sim.h"

#include <functional>
#include <map>
#include <stdexcept>

#include "check/check.h"
#include "cluster/sampler.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vcopt::sim {

namespace {

// Distributions are over SIMULATED seconds (the trace clock, not wall time).
void record_sim_metrics(const ClusterSimResult& res) {
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  static obs::Counter& runs = reg.counter("sim/runs");
  static obs::HistogramMetric& wait = reg.histogram(
      "sim/wait_seconds",
      obs::MetricsRegistry::exponential_buckets(0.5, 2.0, 14));
  static obs::HistogramMetric& hold = reg.histogram(
      "sim/hold_seconds",
      obs::MetricsRegistry::exponential_buckets(0.5, 2.0, 14));
  static obs::Gauge& utilization = reg.gauge("sim/mean_utilization");
  runs.add();
  for (const GrantRecord& g : res.grants) {
    wait.observe(g.wait());
    hold.observe(g.released - g.granted);
  }
  utilization.set(res.mean_utilization);
}

}  // namespace

ClusterSimResult run_cluster_sim(
    cluster::Cloud& cloud, std::unique_ptr<placement::PlacementPolicy> policy,
    const std::vector<cluster::TimedRequest>& trace,
    const ClusterSimOptions& options) {
  VCOPT_TRACE_SPAN("sim/cluster_sim");
  placement::Provisioner prov(cloud, std::move(policy), options.discipline);

  EventQueue queue;
  std::map<std::uint64_t, double> hold_time;  // request id -> hold duration
  std::map<std::uint64_t, double> arrival;    // request id -> arrival time
  std::map<cluster::LeaseId, std::size_t> lease_grant;  // lease -> grant idx
  std::vector<GrantRecord> grants;

  // Utilisation integral: allocated-VM-seconds, sampled at every state
  // change; the same instants feed the exported timeline.
  double vm_seconds = 0;
  double last_sample = 0;
  int allocated_vms = 0;
  std::vector<TimelineSample> timeline;
  auto sample = [&] {
    VCOPT_DCHECK(queue.now() >= last_sample)
        << " utilisation sample went backwards: " << last_sample << " -> "
        << queue.now();
    VCOPT_DCHECK(allocated_vms >= 0)
        << " negative allocated-VM count " << allocated_vms;
    vm_seconds += allocated_vms * (queue.now() - last_sample);
    last_sample = queue.now();
  };
  std::unique_ptr<cluster::ClusterSampler> sampler;
  if (options.recorder != nullptr) {
    cluster::ClusterSamplerOptions so;
    so.period = options.sample_period;
    sampler = std::make_unique<cluster::ClusterSampler>(cloud, *options.recorder,
                                                        so);
  }
  auto record_timeline = [&] {
    timeline.push_back(TimelineSample{queue.now(), allocated_vms,
                                      prov.queue_length(),
                                      cloud.lease_count()});
    if (sampler) sampler->maybe_sample(queue.now());
  };

  for (const cluster::TimedRequest& tr : trace) {
    if (tr.arrival_time < 0 || tr.hold_time < 0) {
      throw std::invalid_argument("run_cluster_sim: negative time in trace");
    }
    if (!hold_time.emplace(tr.request.id(), tr.hold_time).second) {
      throw std::invalid_argument("run_cluster_sim: duplicate request id");
    }
    arrival[tr.request.id()] = tr.arrival_time;
  }

  // Forward declaration so grant handling can schedule releases that in turn
  // produce new grants from the drained queue.
  std::function<void(cluster::LeaseId)> handle_release;

  auto record_grant = [&](const placement::Grant& g) {
    sample();
    GrantRecord rec;
    rec.request_id = g.request_id;
    rec.arrival = arrival.at(g.request_id);
    rec.granted = queue.now();
    rec.distance = g.placement.distance;
    rec.central = g.placement.central;
    rec.vms = g.placement.allocation.total_vms();
    allocated_vms += rec.vms;
    lease_grant[g.lease] = grants.size();
    grants.push_back(rec);
    record_timeline();
    const cluster::LeaseId lease = g.lease;
    queue.schedule_in(hold_time.at(g.request_id),
                      [&, lease] { handle_release(lease); });
  };

  handle_release = [&](cluster::LeaseId lease) {
    sample();
    prov.set_now(queue.now());  // queue_wait_time spans enqueue -> this drain
    const std::size_t idx = lease_grant.at(lease);
    grants[idx].released = queue.now();
    allocated_vms -= grants[idx].vms;
    lease_grant.erase(lease);

    std::vector<placement::Grant> drained = prov.release(lease);
    if (options.batch_drain) {
      auto extra = prov.drain_batch_global();
      drained.insert(drained.end(), extra.begin(), extra.end());
    }
    record_timeline();
    for (const placement::Grant& g : drained) record_grant(g);
  };

  for (const cluster::TimedRequest& tr : trace) {
    queue.schedule(tr.arrival_time, [&, tr] {
      prov.set_now(queue.now());
      auto grant = prov.request(tr.request);
      if (grant) record_grant(*grant);
      else record_timeline();  // queued or rejected: state still changed
    });
  }

  queue.run();
  sample();

  ClusterSimResult out;
  out.grants = std::move(grants);
  out.rejected = prov.rejected_count();
  out.unserved = prov.queue_length();
  out.makespan = queue.now();
  double wait_sum = 0;
  for (const GrantRecord& g : out.grants) {
    out.total_distance += g.distance;
    wait_sum += g.wait();
  }
  out.mean_wait =
      out.grants.empty() ? 0 : wait_sum / static_cast<double>(out.grants.size());
  const int capacity = cloud.inventory().max_capacity().total();
  out.mean_utilization =
      (out.makespan > 0 && capacity > 0)
          ? vm_seconds / (out.makespan * static_cast<double>(capacity))
          : 0;
  out.timeline = std::move(timeline);
  record_sim_metrics(out);
  return out;
}

}  // namespace vcopt::sim
