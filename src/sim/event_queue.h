// Discrete-event simulation core: a time-ordered queue of callbacks with
// stable FIFO ordering for simultaneous events and O(log n) lazy
// cancellation.  Time is simulated seconds (double).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace vcopt::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }

  /// Schedules `cb` at absolute simulated time `time` (>= now).  Events with
  /// equal time run in scheduling order.
  EventId schedule(double time, Callback cb);

  /// Schedules `cb` `delay` seconds from now.
  EventId schedule_in(double delay, Callback cb) {
    return schedule(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event.  Cancelling an already-fired or unknown id is
  /// a no-op (lazy deletion).
  void cancel(EventId id);

  /// Runs the earliest pending event.  Returns false when the queue is empty.
  bool step();

  /// Runs events until the queue drains.  Returns the number of events run.
  std::size_t run();

  /// Runs events with time <= `t`, then advances the clock to exactly `t`.
  std::size_t run_until(double t);

  std::size_t pending() const { return callbacks_.size(); }
  bool empty() const { return pending() == 0; }

 private:
  struct Entry {
    double time;
    EventId id;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return id > o.id;  // ids are issued monotonically -> FIFO among ties
    }
  };

  double now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  // Lookup-only (erase/find/count): never iterated, so the hash order can
  // never leak into event order, the journal, or any replayed output.
  std::unordered_set<EventId> cancelled_;  // NOLINT(vcopt-unordered-in-replay)
  std::unordered_map<EventId, Callback> callbacks_;  // NOLINT(vcopt-unordered-in-replay)
};

}  // namespace vcopt::sim
