#include "sim/event_queue.h"

#include <stdexcept>

#include "check/check.h"

namespace vcopt::sim {

EventId EventQueue::schedule(double time, Callback cb) {
  if (time < now_) {
    throw std::invalid_argument("EventQueue::schedule: time in the past");
  }
  const EventId id = next_id_++;
  heap_.push(Entry{time, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void EventQueue::cancel(EventId id) {
  if (callbacks_.count(id)) {
    cancelled_.insert(id);
    callbacks_.erase(id);
  }
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Entry e = heap_.top();
    heap_.pop();
    if (cancelled_.erase(e.id)) continue;  // lazily dropped
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) continue;
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    // Simulated time is monotone: the heap can never surface an event from
    // the past (schedule() rejects them), so firing order == time order.
    VCOPT_INVARIANT(e.time >= now_)
        << " event " << e.id << " fires at " << e.time
        << " but the clock is already at " << now_;
    now_ = e.time;
    cb();
    return true;
  }
  return false;
}

std::size_t EventQueue::run() {
  std::size_t count = 0;
  while (step()) ++count;
  return count;
}

std::size_t EventQueue::run_until(double t) {
  std::size_t count = 0;
  while (!heap_.empty()) {
    const Entry e = heap_.top();
    if (cancelled_.count(e.id)) {
      heap_.pop();
      cancelled_.erase(e.id);
      continue;
    }
    if (e.time > t) break;
    step();
    ++count;
  }
  if (now_ < t) now_ = t;
  return count;
}

}  // namespace vcopt::sim
