// Periodic tick driver for background actors on an EventQueue: fires a
// callback every `period` simulated seconds until `horizon` (inclusive of
// the last tick at or before it) or until stop().  The rebalance loop rides
// this — its collect/decide/migrate round is one tick — but the helper is
// generic: any maintenance actor that wants a deterministic heartbeat
// composed with the rest of the schedule can use it.
//
// Ticks are ordinary events, so they interleave deterministically with
// grants, releases, faults and repairs under the queue's FIFO-among-ties
// guarantee.  Rescheduling happens from inside the fired event, so a tick
// callback that schedules follow-up work (e.g. a migration commit) keeps
// strict event ordering.
#pragma once

#include <cstddef>
#include <functional>

#include "sim/event_queue.h"

namespace vcopt::sim {

class PeriodicTicker {
 public:
  /// Does not start ticking until start().  The queue must outlive the
  /// ticker.  Throws std::invalid_argument on period <= 0.
  PeriodicTicker(EventQueue& queue, double period, double horizon,
                 std::function<void()> tick);

  /// Schedules the first tick at now + period.  No-op if already started.
  void start();

  /// Cancels the pending tick; no further ticks fire.  Idempotent.
  void stop();

  std::size_t ticks_fired() const { return ticks_; }
  bool running() const { return running_; }

 private:
  void fire();

  EventQueue& queue_;
  double period_;
  double horizon_;
  std::function<void()> tick_;
  bool running_ = false;
  EventId pending_ = 0;
  std::size_t ticks_ = 0;
};

}  // namespace vcopt::sim
