// Queueing simulation of a cloud serving virtual-cluster requests: requests
// arrive at given instants, hold their clusters for a duration, then release
// them; queued requests are drained on release.  Used to compare placement
// policies under churn (the setting of the paper's global-optimisation
// discussion, §III.C).
#pragma once

#include <memory>
#include <vector>

#include "cluster/cloud.h"
#include "obs/timeseries.h"
#include "placement/provisioner.h"
#include "sim/event_queue.h"

namespace vcopt::sim {

struct GrantRecord {
  std::uint64_t request_id = 0;
  double arrival = 0;
  double granted = 0;   ///< when the lease was created
  double released = 0;  ///< when the lease ended
  double distance = 0;  ///< DC of the granted allocation
  std::size_t central = 0;
  int vms = 0;

  double wait() const { return granted - arrival; }
};

/// One point of the simulation's state timeline, sampled at every grant,
/// release and arrival.
struct TimelineSample {
  double time = 0;
  int allocated_vms = 0;
  std::size_t queue_length = 0;
  std::size_t active_leases = 0;
};

struct ClusterSimResult {
  std::vector<GrantRecord> grants;
  std::uint64_t rejected = 0;   ///< requests that exceeded total capacity
  std::uint64_t unserved = 0;   ///< still queued when the simulation drained
  double makespan = 0;          ///< time of the last release
  double total_distance = 0;    ///< sum of DC over all grants
  double mean_wait = 0;
  double mean_utilization = 0;  ///< time-averaged fraction of VMs allocated
  std::vector<TimelineSample> timeline;  ///< state after each event
};

struct ClusterSimOptions {
  /// If true, queued requests are drained as a batch via Algorithm 2 on
  /// every release instead of one-by-one placement.
  bool batch_drain = false;
  /// Wait-queue service order for one-by-one draining.
  placement::QueueDiscipline discipline = placement::QueueDiscipline::kFifo;
  /// Optional time-series recorder: when set, a cluster::ClusterSampler
  /// records per-node load/free, fragmentation and per-lease DC at event
  /// instants (at most once per `sample_period` simulated seconds).
  obs::Recorder* recorder = nullptr;
  double sample_period = 1.0;
};

/// Runs the full trace to completion.  The cloud is mutated (all leases are
/// released by the end).
ClusterSimResult run_cluster_sim(
    cluster::Cloud& cloud, std::unique_ptr<placement::PlacementPolicy> policy,
    const std::vector<cluster::TimedRequest>& trace,
    const ClusterSimOptions& options = {});

}  // namespace vcopt::sim
