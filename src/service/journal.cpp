#include "service/journal.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "check/check.h"
#include "obs/request_context.h"
#include "util/logging.h"

namespace vcopt::service {

using util::Json;
using util::JsonArray;
using util::JsonObject;

namespace {

JsonArray to_json_array(const std::vector<std::uint64_t>& xs) {
  JsonArray arr;
  arr.reserve(xs.size());
  for (std::uint64_t x : xs) arr.push_back(Json(static_cast<double>(x)));
  return arr;
}

std::vector<std::uint64_t> from_json_array(const Json& j) {
  std::vector<std::uint64_t> out;
  out.reserve(j.as_array().size());
  for (const Json& e : j.as_array()) {
    out.push_back(static_cast<std::uint64_t>(e.as_number()));
  }
  return out;
}

std::uint64_t u64_at(const Json& j, const std::string& key) {
  return static_cast<std::uint64_t>(j.at(key).as_number());
}

// Per-line integrity: FNV-1a 64 over the record serialised without its
// len/sum fields.  Json objects are key-sorted maps, so stripping the two
// fields and re-dumping reproduces the writer's payload bytes exactly.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// True when the line's len/sum fields (if present) match its payload.
bool integrity_ok(const Json& j) {
  if (!j.is_object() || !j.contains("len") || !j.contains("sum")) {
    return true;  // legacy line without integrity fields
  }
  if (!j.at("len").is_number() || !j.at("sum").is_string()) return false;
  JsonObject stripped = j.as_object();
  stripped.erase("len");
  stripped.erase("sum");
  const std::string payload = Json(std::move(stripped)).dump(0);
  return static_cast<double>(payload.size()) == j.at("len").as_number() &&
         hex64(fnv1a(payload)) == j.at("sum").as_string();
}

}  // namespace

const char* to_string(RecordType t) {
  switch (t) {
    case RecordType::kSubmit: return "submit";
    case RecordType::kWindow: return "window";
    case RecordType::kRelease: return "release";
    case RecordType::kRebalance: return "rebalance";
  }
  return "?";
}

void JournalWriter::write(JsonObject record) {
  // One compact line per record; flush so a crash loses at most the record
  // being written, never a decided-but-unjournaled one (records are written
  // before their effects execute).  len/sum are computed over the record
  // WITHOUT them, so the parser can strip and re-derive both.
  const std::string payload = Json(record).dump(0);
  record["len"] = static_cast<double>(payload.size());
  record["sum"] = hex64(fnv1a(payload));
  out_ << Json(std::move(record)).dump(0) << "\n";
  out_.flush();
  ++records_;
}

void JournalWriter::submit(std::uint64_t seq, const cluster::Request& request,
                           const SubmitOptions& options, double time,
                           std::uint64_t trace_id) {
  JsonObject o;
  o["type"] = "submit";
  o["seq"] = static_cast<double>(seq);
  o["id"] = static_cast<double>(request.id());
  JsonArray counts;
  counts.reserve(request.type_count());
  for (std::size_t j = 0; j < request.type_count(); ++j) {
    counts.push_back(Json(request.count(j)));
  }
  o["counts"] = Json(std::move(counts));
  o["priority"] = options.priority;
  o["class"] = to_string(options.klass);
  if (std::isfinite(options.deadline)) o["deadline"] = options.deadline;
  o["time"] = time;
  o["trace"] = obs::trace_id_hex(trace_id);
  write(std::move(o));
}

void JournalWriter::window(std::uint64_t window_id, double time,
                           const char* reason,
                           const std::vector<std::uint64_t>& members,
                           const std::vector<std::uint64_t>& shed,
                           std::size_t cell) {
  JsonObject o;
  o["type"] = "window";
  o["window"] = static_cast<double>(window_id);
  o["time"] = time;
  o["reason"] = reason;
  if (cell != kNoCell) o["cell"] = static_cast<double>(cell);
  o["members"] = Json(to_json_array(members));
  o["shed"] = Json(to_json_array(shed));
  write(std::move(o));
}

void JournalWriter::release(cluster::LeaseId lease, double time) {
  JsonObject o;
  o["type"] = "release";
  o["lease"] = static_cast<double>(lease);
  o["time"] = time;
  write(std::move(o));
}

void JournalWriter::rebalance(double time,
                              const std::vector<RebalanceMove>& moves) {
  JsonObject o;
  o["type"] = "rebalance";
  o["time"] = time;
  JsonArray arr;
  arr.reserve(moves.size());
  for (const RebalanceMove& m : moves) {
    JsonObject mo;
    mo["lease"] = static_cast<double>(m.lease);
    mo["from"] = static_cast<double>(m.from);
    mo["to"] = static_cast<double>(m.to);
    mo["vmtype"] = static_cast<double>(m.type);
    arr.push_back(Json(std::move(mo)));
  }
  o["moves"] = Json(std::move(arr));
  write(std::move(o));
}

std::vector<JournalRecord> parse_journal(std::istream& in,
                                         const std::string& source) {
  std::vector<JournalRecord> records;
  std::vector<std::string> lines;
  {
    std::string line;
    while (std::getline(in, line)) lines.push_back(std::move(line));
  }
  // A crash mid-append can only tear the FINAL record: everything earlier
  // was written and flushed whole.  Damage there is survivable (warn, parse
  // what precedes it); the same damage mid-file is corruption and fails.
  std::size_t last_nonempty = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!lines[i].empty()) last_nonempty = i + 1;
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t lineno = i + 1;
    const bool is_final = lineno == last_nonempty;
    if (line.empty()) continue;  // tolerate a trailing blank line
    Json j;
    try {
      j = Json::parse(line);
    } catch (const util::JsonParseError& e) {
      if (is_final) {
        util::log_warn() << source << ":" << lineno
                         << ": ignoring torn final journal line "
                            "(crash mid-append)";
        break;
      }
      // NDJSON: the record number is the line, the byte offset the column.
      std::ostringstream msg;
      msg << source << ":" << lineno << ":" << (e.offset() + 1) << ": "
          << e.what() << "\n  " << line << "\n  "
          << std::string(std::min(e.offset(), line.size()), ' ') << "^";
      throw std::invalid_argument(msg.str());
    }
    if (!integrity_ok(j)) {
      if (is_final) {
        util::log_warn() << source << ":" << lineno
                         << ": ignoring final journal line with bad checksum";
        break;
      }
      throw std::invalid_argument(
          source + ":" + std::to_string(lineno) +
          ": journal integrity check failed (len/sum mismatch)");
    }
    try {
      JournalRecord rec;
      const std::string& type = j.at("type").as_string();
      rec.time = j.at("time").as_number();
      if (type == "submit") {
        rec.type = RecordType::kSubmit;
        rec.seq = u64_at(j, "seq");
        std::vector<int> counts;
        counts.reserve(j.at("counts").as_array().size());
        for (const Json& c : j.at("counts").as_array()) {
          counts.push_back(c.as_int());
        }
        rec.options.priority = j.at("priority").as_int();
        const auto klass = parse_request_class(j.at("class").as_string());
        if (!klass) {
          throw std::invalid_argument("unknown request class '" +
                                      j.at("class").as_string() + "'");
        }
        rec.options.klass = *klass;
        rec.options.deadline =
            j.contains("deadline") ? j.at("deadline").as_number() : kNoDeadline;
        rec.request = cluster::Request(std::move(counts), u64_at(j, "id"),
                                       rec.options.priority);
        if (j.contains("trace")) {
          rec.trace_id = obs::parse_trace_id(j.at("trace").as_string());
          if (rec.trace_id == 0) {
            throw std::invalid_argument("malformed trace id '" +
                                        j.at("trace").as_string() + "'");
          }
        } else {
          // Journals written before tracing: re-derive (pure function of
          // seq and id, so replay matches what a live run would emit today).
          rec.trace_id = obs::derive_trace_id(rec.seq, rec.request.id());
        }
      } else if (type == "window") {
        rec.type = RecordType::kWindow;
        rec.window_id = u64_at(j, "window");
        rec.reason = j.at("reason").as_string();
        if (j.contains("cell")) {
          rec.cell = static_cast<std::size_t>(j.at("cell").as_number());
        }
        rec.members = from_json_array(j.at("members"));
        rec.shed = from_json_array(j.at("shed"));
      } else if (type == "release") {
        rec.type = RecordType::kRelease;
        rec.lease = u64_at(j, "lease");
      } else if (type == "rebalance") {
        rec.type = RecordType::kRebalance;
        rec.moves.reserve(j.at("moves").as_array().size());
        for (const Json& m : j.at("moves").as_array()) {
          RebalanceMove mv;
          mv.lease = u64_at(m, "lease");
          mv.from = static_cast<std::size_t>(m.at("from").as_number());
          mv.to = static_cast<std::size_t>(m.at("to").as_number());
          mv.type = static_cast<std::size_t>(m.at("vmtype").as_number());
          rec.moves.push_back(mv);
        }
      } else {
        throw std::invalid_argument("unknown record type '" + type + "'");
      }
      records.push_back(std::move(rec));
    } catch (const std::logic_error& e) {
      throw std::invalid_argument(source + ":" + std::to_string(lineno) +
                                  ": bad journal record: " + e.what());
    }
  }
  return records;
}

util::Json outcome_to_json(const Outcome& outcome) {
  JsonObject o;
  o["type"] = "outcome";
  o["seq"] = static_cast<double>(outcome.seq);
  o["id"] = static_cast<double>(outcome.request_id);
  o["window"] = static_cast<double>(outcome.window_id);
  o["trace"] = obs::trace_id_hex(outcome.trace_id);
  o["status"] = to_string(outcome.kind);
  if (has_lease(outcome.kind)) {
    o["lease"] = static_cast<double>(outcome.lease);
    o["central"] = static_cast<double>(outcome.central);
    o["distance"] = outcome.distance;
  }
  o["requested"] = outcome.requested_vms;
  o["granted"] = outcome.granted_vms;
  o["submitted"] = outcome.submit_time;
  o["decided"] = outcome.decide_time;
  return Json(std::move(o));
}

std::string grant_stream(std::vector<Outcome> outcomes) {
  std::sort(outcomes.begin(), outcomes.end(),
            [](const Outcome& a, const Outcome& b) { return a.seq < b.seq; });
  std::string out;
  for (const Outcome& o : outcomes) {
    out += outcome_to_json(o).dump(0);
    out += '\n';
  }
  return out;
}

Outcome outcome_from_json(const util::Json& json) {
  VCOPT_ASSERT(json.at("type").as_string() == "outcome")
      << " not an outcome record: " << json.dump(0);
  Outcome out;
  out.seq = u64_at(json, "seq");
  out.request_id = u64_at(json, "id");
  out.window_id = u64_at(json, "window");
  out.trace_id = json.contains("trace")
                     ? obs::parse_trace_id(json.at("trace").as_string())
                     : obs::derive_trace_id(out.seq, out.request_id);
  const std::string& status = json.at("status").as_string();
  bool found = false;
  for (OutcomeKind k :
       {OutcomeKind::kGranted, OutcomeKind::kDegraded, OutcomeKind::kPartial,
        OutcomeKind::kAbandoned, OutcomeKind::kShedDeadline,
        OutcomeKind::kRejectedEmpty, OutcomeKind::kRejectedOverCapacity}) {
    if (status == to_string(k)) {
      out.kind = k;
      found = true;
      break;
    }
  }
  if (!found) {
    throw std::invalid_argument("outcome_from_json: unknown status '" +
                                status + "'");
  }
  if (has_lease(out.kind)) {
    out.lease = u64_at(json, "lease");
    out.central = static_cast<std::size_t>(json.at("central").as_number());
    out.distance = json.at("distance").as_number();
  }
  out.requested_vms = json.at("requested").as_int();
  out.granted_vms = json.at("granted").as_int();
  out.submit_time = json.at("submitted").as_number();
  out.decide_time = json.at("decided").as_number();
  return out;
}

}  // namespace vcopt::service
