// Journal replay: re-executes a service journal against a fresh Cloud and
// reproduces the original run's decisions exactly — same windows (the
// journal records membership, not just arrival order), same grants, same
// lease ids, same DC totals.  Decision logic is detail::decide_window, the
// very function the live dispatcher runs, so live and replayed runs cannot
// diverge by construction; the only inputs are the journal records and the
// (deterministic) ServiceOptions the service ran with.
#pragma once

#include <string>
#include <vector>

#include "cluster/cloud.h"
#include "service/journal.h"
#include "service/service.h"

namespace vcopt::service {

/// Everything a replayed journal produced.
struct ReplayResult {
  /// Outcomes in decision order (window order; shed before members).
  std::vector<Outcome> outcomes;
  /// Canonical NDJSON grant stream (see grant_stream) — byte-comparable
  /// against the live run's collected outcomes.
  std::string grants;
  /// Sum of Definition-1 distances over the lease-carrying outcomes.
  double total_distance = 0;
  std::uint64_t windows = 0;
  std::uint64_t releases = 0;
  /// Live migrations re-applied from rebalance records.
  std::uint64_t migrations = 0;
};

/// Replays `records` against `cloud` (normally a freshly built copy of the
/// topology the live service ran on), using the same deterministic
/// `options` (policy, ladder, discipline; clock/journal fields are ignored).
/// Throws std::invalid_argument on a corrupt journal: a window member or
/// shed seq with no prior submit record, or a duplicate submit seq.
ReplayResult replay_journal(const std::vector<JournalRecord>& records,
                            cluster::Cloud& cloud,
                            const ServiceOptions& options);

}  // namespace vcopt::service
