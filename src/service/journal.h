// NDJSON write-ahead journal for the placement service: one JSON object per
// line, appended under the service lock *before* the decision it describes
// executes, so a crashed or restarted service can replay the file and land
// in the same state (same grants, same lease ids, same DC totals —
// byte-identical outcome records; see docs/service.md).
//
// Record schemas (keys sorted by util::Json's object ordering):
//   {"type":"submit","seq":N,"id":I,"counts":[..],"priority":P,
//    "class":"batch","time":T,"trace":"16-hex"} — accepted submission;
//    "deadline":D appears only for finite deadlines.  "trace" is the
//    request's obs trace id; journals written before tracing landed omit it
//    and the parser re-derives it (obs::derive_trace_id is a pure function
//    of seq and id), so old journals still replay byte-identically
//   {"type":"window","window":W,"time":T,"reason":"size|wait|flush",
//    "members":[seq..],"shed":[seq..]}          — a closed decision window:
//    `members` in dispatch order, `shed` the deadline-expired entries.
//    "cell":C appears only for windows routed to a cell (cell-mode serving,
//    docs/cells.md); replay re-plans the window inside that cell.  Flat
//    windows — and cell-mode windows whose members no cell admitted — omit
//    it, so flat journals are byte-identical to pre-cell builds
//   {"type":"release","lease":L,"time":T}       — a lease returned
//   {"type":"rebalance","time":T,"moves":[{"from":F,"lease":L,"to":D,
//    "vmtype":J},..]}                            — a drift-repair pass: the
//    exact live migrations the service applied between windows, so replay
//    reproduces the capacity evolution they caused
//
// Integrity: every line additionally carries "len" (byte length of the
// record serialised WITHOUT len/sum) and "sum" (FNV-1a 64 of those bytes).
// The parser re-derives both and rejects a mismatched line — except when
// the damage is confined to the FINAL line, the signature of a crash mid-
// append, which is skipped with a warning instead of failing the whole
// replay.  Lines without len/sum (journals from older builds) parse
// unchanged.
//
// The window record carries the decided membership (not just arrival
// order), so replay never re-runs the window-formation policy — it re-
// executes exactly the windows the live service formed.  Outcome records
// (the grant stream `vcopt_cli serve` prints) use outcome_to_json below;
// they are NOT part of the journal, they are what replay must reproduce.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "service/service.h"
#include "util/json.h"

namespace vcopt::service {

enum class RecordType { kSubmit, kWindow, kRelease, kRebalance };

const char* to_string(RecordType t);

/// One journaled live migration (a rebalance record holds a batch of them).
struct RebalanceMove {
  cluster::LeaseId lease = 0;
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t type = 0;
};

/// One parsed journal line; fields beyond `type`/`time` are meaningful only
/// for the matching record type.
struct JournalRecord {
  RecordType type = RecordType::kSubmit;
  double time = 0;
  // kSubmit
  std::uint64_t seq = 0;
  cluster::Request request;  // id, counts and priority
  SubmitOptions options;
  std::uint64_t trace_id = 0;  // derived when the record predates tracing
  // kWindow
  std::uint64_t window_id = 0;
  std::string reason;
  std::size_t cell = kNoCell;  ///< routed cell; kNoCell when absent (flat)
  std::vector<std::uint64_t> members;
  std::vector<std::uint64_t> shed;
  // kRelease
  cluster::LeaseId lease = 0;
  // kRebalance
  std::vector<RebalanceMove> moves;
};

/// Appends NDJSON records to a stream (one line per call, flushed so the
/// journal survives a crash mid-run).  Not internally synchronised — the
/// service serialises calls under its own lock.
class JournalWriter {
 public:
  explicit JournalWriter(std::ostream& out) : out_(out) {}

  void submit(std::uint64_t seq, const cluster::Request& request,
              const SubmitOptions& options, double time,
              std::uint64_t trace_id);
  /// `cell` = kNoCell omits the record's "cell" field (flat serving).
  void window(std::uint64_t window_id, double time, const char* reason,
              const std::vector<std::uint64_t>& members,
              const std::vector<std::uint64_t>& shed,
              std::size_t cell = kNoCell);
  void release(cluster::LeaseId lease, double time);
  void rebalance(double time, const std::vector<RebalanceMove>& moves);

  std::uint64_t records_written() const { return records_; }

 private:
  void write(util::JsonObject record);

  std::ostream& out_;
  std::uint64_t records_ = 0;
};

/// Parses a journal stream.  Malformed JSON or a schema violation throws
/// std::invalid_argument with a `source:line:col` diagnostic (line = NDJSON
/// record number) in the style of workload::config.
std::vector<JournalRecord> parse_journal(std::istream& in,
                                         const std::string& source = "journal");

/// Serialisation of one decided outcome — the grant stream.  Deterministic
/// (sorted keys, %.17g doubles), so replay equivalence can be checked with
/// a byte compare of the emitted lines.
util::Json outcome_to_json(const Outcome& outcome);

/// Round-trip of outcome_to_json for tools that read a grant stream back.
Outcome outcome_from_json(const util::Json& json);

/// Canonical grant stream: every outcome as one NDJSON line, sorted by seq.
/// Two runs that made the same decisions produce byte-identical streams
/// regardless of the order the outcomes were collected in — this is the form
/// the replay-equivalence tests and `vcopt_cli serve --grants-out` compare.
std::string grant_stream(std::vector<Outcome> outcomes);

}  // namespace vcopt::service
