#include "service/replay.h"

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "cell/partition.h"
#include "obs/trace.h"
#include "placement/provisioner.h"

namespace vcopt::service {

namespace {

PendingEntry take_pending(std::map<std::uint64_t, PendingEntry>& pending,
                          std::uint64_t seq, std::uint64_t window_id) {
  auto it = pending.find(seq);
  if (it == pending.end()) {
    throw std::invalid_argument(
        "replay_journal: window " + std::to_string(window_id) +
        " references seq " + std::to_string(seq) +
        " with no pending submit record");
  }
  PendingEntry entry = std::move(it->second);
  pending.erase(it);
  return entry;
}

}  // namespace

ReplayResult replay_journal(const std::vector<JournalRecord>& records,
                            cluster::Cloud& cloud,
                            const ServiceOptions& options) {
  VCOPT_TRACE_SPAN("service/replay");
  placement::Provisioner prov(cloud, placement::make_policy(options.policy),
                              options.discipline);
  // Cell-mode journals: rebuild the partition the live service used (a pure
  // function of topology + options) so each window record re-plans inside
  // the cell it names.  No directory/router is needed — routing decisions
  // are baked into the recorded window membership and cell ids.
  std::unique_ptr<cell::CellPartition> partition;
  std::vector<std::vector<int>> cell_cap_sums;
  if (options.cell_mode()) {
    cell::CellPartitionOptions po;
    po.target_cells = options.cells;
    po.cell_size = options.cell_size;
    partition = std::make_unique<cell::CellPartition>(cloud.topology(), po);
    cell_cap_sums = detail::cell_capacity_sums(*partition, cloud);
  }
  std::map<std::uint64_t, PendingEntry> pending;
  ReplayResult result;
  for (const JournalRecord& rec : records) {
    switch (rec.type) {
      case RecordType::kSubmit: {
        if (pending.count(rec.seq)) {
          throw std::invalid_argument("replay_journal: duplicate submit seq " +
                                      std::to_string(rec.seq));
        }
        pending.emplace(rec.seq, PendingEntry{rec.request, rec.options,
                                              rec.seq, rec.time,
                                              rec.trace_id});
        break;
      }
      case RecordType::kWindow: {
        std::vector<PendingEntry> shed;
        std::vector<PendingEntry> members;
        shed.reserve(rec.shed.size());
        members.reserve(rec.members.size());
        for (std::uint64_t seq : rec.shed) {
          shed.push_back(take_pending(pending, seq, rec.window_id));
        }
        for (std::uint64_t seq : rec.members) {
          members.push_back(take_pending(pending, seq, rec.window_id));
        }
        detail::CellPlanContext ctx;
        ctx.partition = partition.get();
        ctx.capacity_col_sums = &cell_cap_sums;
        ctx.cell = rec.cell;
        std::vector<Outcome> outcomes = detail::decide_window(
            prov, cloud, shed, members, rec.window_id, rec.time, options,
            partition ? &ctx : nullptr);
        ++result.windows;
        for (Outcome& o : outcomes) {
          if (has_lease(o.kind)) result.total_distance += o.distance;
          result.outcomes.push_back(std::move(o));
        }
        break;
      }
      case RecordType::kRelease: {
        cloud.release(rec.lease);
        ++result.releases;
        break;
      }
      case RecordType::kRebalance: {
        // Re-apply the journaled migrations through the same two-phase
        // primitive the live pass used; in replay the cloud state at this
        // record matches the live run's, so every move must land.
        for (const RebalanceMove& m : rec.moves) {
          const std::uint64_t ticket =
              cloud.begin_migration(m.lease, m.from, m.to, m.type);
          if (ticket == 0 || !cloud.commit_migration(ticket)) {
            throw std::invalid_argument(
                "replay_journal: journaled migration of lease " +
                std::to_string(m.lease) + " (" + std::to_string(m.from) +
                " -> " + std::to_string(m.to) +
                ") could not be re-applied — journal/cloud mismatch");
          }
          ++result.migrations;
        }
        break;
      }
    }
  }
  result.grants = grant_stream(result.outcomes);
  return result;
}

}  // namespace vcopt::service
