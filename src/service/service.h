// vcopt::service — a concurrent placement service in front of the cloud.
//
// The paper's Global Shortest Distance machinery (Def. 4, Algorithm 2) only
// pays off when several requests are decided *together*; this layer is where
// concurrent traffic is aggregated into decision windows so the batched path
// is reachable from a realistic serving front-end:
//
//   producers ──submit()──▶ admission queue ──window──▶ dispatch ──▶ grants
//                 │  (bounded, shed/queue-full)  │
//                 └── NDJSON journal (append before dispatch) ─▶ replay
//
// Micro-batching window: the open window closes when it holds `max_batch`
// accepted requests OR when the oldest pending request has waited `max_wait`
// seconds, whichever comes first (plus explicit flush()/stop()).  A closed
// window of size 1 is decided through the per-request Algorithm-1 ladder
// (Provisioner::submit_laddered); larger windows go through Algorithm 2
// (GlobalSubOpt::place_batch), with the ladder as the per-request fallback
// for window members the batch step could not admit.
//
// Clock modes:
//   kVirtual  deterministic simulated seconds, advanced only by advance_to()
//             (and implicit size-triggered closes).  Same submit sequence ⇒
//             bit-identical journal, decisions and grant records — the mode
//             the replay guarantee and all tests run in.
//   kWall     a background dispatcher thread closes windows on real time
//             (steady_clock seconds since construction).  Decisions are
//             journaled the same way; replaying such a journal in virtual
//             mode reproduces them (the journal records window membership,
//             not just arrival order).
//
// Thread-safety: every public method is safe to call from any thread; one
// mutex serialises admission, window bookkeeping, dispatch and the journal,
// so the journal order IS the admission order.  Determinism caveat: the
// default LadderOptions here zero the exact-ILP wall-clock budget — a rung
// classified by elapsed wall time would make replay time-dependent (see
// docs/service.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cloud.h"
#include "cluster/request.h"
#include "cluster/snapshot.h"
#include "obs/request_context.h"
#include "obs/slo.h"
#include "placement/provisioner.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace vcopt::cell {
class CellDirectory;
class CellPartition;
class CellRouter;
}
namespace vcopt::cluster {
class ClusterSampler;
}
namespace vcopt::obs {
class Recorder;
}

namespace vcopt::service {

/// "No deadline": infinitely far in the future on the service clock.
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// "Not routed to a cell": flat-mode entries and windows carry this cell id,
/// as do cell-mode submissions no cell admits (their windows plan flat).
inline constexpr std::size_t kNoCell = static_cast<std::size_t>(-1);

/// Traffic class of a submission; decides who is shed first under pressure.
enum class RequestClass {
  kInteractive,  ///< latency-sensitive; never watermark-shed
  kBatch,        ///< default; never watermark-shed
  kBestEffort,   ///< shed once the queue passes the shed watermark
};

const char* to_string(RequestClass c);
std::optional<RequestClass> parse_request_class(const std::string& name);

/// Per-submission options (the request itself carries id + VM counts).
struct SubmitOptions {
  int priority = 0;             ///< kPriority window ordering; larger = first
  double deadline = kNoDeadline;  ///< absolute service-clock instant; a
                                  ///< request not decided by then is shed
  RequestClass klass = RequestClass::kBatch;
};

/// Admission-control verdict, returned synchronously from submit().
enum class AdmissionStatus {
  kAccepted,   ///< journaled and pending; an Outcome will follow
  kShed,       ///< dropped by policy (dead-on-arrival deadline, or
               ///< best-effort class above the shed watermark)
  kQueueFull,  ///< bounded queue at capacity — explicit backpressure
};

const char* to_string(AdmissionStatus s);

/// Receipt for one submit(); `seq` identifies the accepted request in the
/// journal and in its eventual Outcome (0 when not accepted).
struct SubmitReceipt {
  AdmissionStatus admission = AdmissionStatus::kQueueFull;
  std::uint64_t seq = 0;
};

/// Terminal fate of an accepted request.
enum class OutcomeKind {
  kGranted,        ///< full allocation from the batch step or exact rung
  kDegraded,       ///< full allocation from a fallback ladder rung
  kPartial,        ///< best-effort allocation, fewer VMs than requested
  kAbandoned,      ///< nothing could be placed
  kShedDeadline,   ///< deadline passed before its window was decided
  kRejectedEmpty,  ///< zero-VM request
  kRejectedOverCapacity,  ///< exceeds total capacity, can never be served
};

const char* to_string(OutcomeKind k);
/// True when the outcome carries a live lease (granted/degraded/partial).
bool has_lease(OutcomeKind k);

/// Terminal decision for one accepted request.
struct Outcome {
  std::uint64_t seq = 0;
  std::uint64_t request_id = 0;
  std::uint64_t window_id = 0;
  /// Request-scoped trace id (obs::derive_trace_id of seq and request id):
  /// links this outcome to its journal submit record and stage spans.
  std::uint64_t trace_id = 0;
  OutcomeKind kind = OutcomeKind::kAbandoned;
  cluster::LeaseId lease = 0;  ///< 0 unless has_lease(kind)
  std::size_t central = 0;
  double distance = 0;
  int requested_vms = 0;
  int granted_vms = 0;
  double submit_time = 0;
  double decide_time = 0;
};

/// An accepted submission waiting for its window (also the unit the journal
/// and the replay driver exchange).
struct PendingEntry {
  cluster::Request request;
  SubmitOptions options;
  std::uint64_t seq = 0;
  double submit_time = 0;
  std::uint64_t trace_id = 0;  ///< carried through to the Outcome
  /// Cell the request was routed to at admission (cell mode); kNoCell in
  /// flat mode and for requests no cell admits.  Windows close per cell.
  std::size_t cell = kNoCell;
};

enum class ClockMode {
  kVirtual,  ///< advance_to()-driven simulated seconds (deterministic)
  kWall,     ///< background dispatcher on steady_clock seconds
};

/// Declared objectives for the per-service SloTracker.  Every threshold is
/// on the service clock / DC units; windows and burn thresholds follow
/// obs::SloSpec semantics.  Always on (the tracker is cheap); set
/// `enabled = false` to skip declaration entirely.
struct ServiceSloOptions {
  bool enabled = true;
  /// service/latency: placement latency (decide - submit) above this many
  /// seconds is an SLO violation...
  double latency_threshold = 1.0;
  /// ... and at most this fraction of decisions may violate it.
  double latency_objective = 0.01;
  /// service/shed_rate: at most this fraction of submissions may be refused
  /// (shed or queue-full) at admission.
  double shed_objective = 0.05;
  /// service/dc_per_vm: granted DC per VM above this is a violation...
  double dc_threshold = 4.0;
  /// ... allowed for at most this fraction of grants.
  double dc_objective = 0.25;
  double short_window = 60;
  double long_window = 600;
  double burn_alert = 2.0;
  std::size_t min_events = 10;
};

/// Opt-in drift-repair pass (docs/robustness.md): between decide windows
/// the service runs a budgeted rebalance — collect drifted leases from
/// recorded telemetry, plan Theorem-2 moves whose DC gain beats their
/// data-movement cost, apply them through the cloud's two-phase migration
/// primitive.  Every pass is journaled write-ahead (a "rebalance" record
/// listing the exact moves), so replay reproduces the capacity evolution
/// byte-identically.  Requires ServiceOptions::recorder — without one the
/// pass has no telemetry to read and stays inert.
struct ServiceRebalanceOptions {
  bool enabled = false;
  double period = 5.0;        ///< min service-clock seconds between passes
  std::size_t max_moves = 2;  ///< migration budget per pass
  double drift_ratio = 1.10;  ///< lease drifted when last > ratio * min DC
  double min_net_gain = 1e-6;
  double lease_cooldown = 10.0;  ///< seconds a migrated lease is left alone
  double cost_per_gb = 0.005;
  double shuffle_cost_factor = 0.02;
};

struct ServiceOptions {
  std::size_t max_batch = 8;   ///< window closes at this many pending
  double max_wait = 0.010;     ///< ... or when the oldest waited this long (s)
  std::size_t queue_capacity = 256;  ///< pending bound; beyond => kQueueFull
  double shed_watermark = 0.75;  ///< occupancy fraction above which
                                 ///< kBestEffort submissions are shed
  placement::QueueDiscipline discipline = placement::QueueDiscipline::kFifo;
  /// Ladder for size-1 windows and batch-step fallbacks.  The exact-ILP rung
  /// is disabled by default (budget 0): its wall-clock classification would
  /// break the deterministic-replay guarantee.
  placement::LadderOptions ladder{.ilp_budget_ms = 0};
  std::string policy = "online-heuristic";  ///< placement::make_policy spec
  ClockMode clock = ClockMode::kVirtual;
  std::ostream* journal = nullptr;  ///< NDJSON sink; null = no journal
  ServiceSloOptions slo;  ///< objectives for the per-service SloTracker
  /// Optional time-series recorder: when set, a cluster::ClusterSampler
  /// records per-node load/free, fragmentation and per-lease DC on every
  /// window close and release (at most once per `sample_period` service
  /// seconds).  Must outlive the service.
  obs::Recorder* recorder = nullptr;
  double sample_period = 1.0;
  /// Snapshot-isolated pipelined serving (docs/performance.md): with N > 0,
  /// N dedicated evaluation threads plan closed windows against an
  /// immutable epoch-tagged CloudSnapshot (loaded lock-free) while admission
  /// and journaling continue, and commit the planned grants strictly in
  /// window-close order — re-planning against a fresh snapshot when the
  /// epoch moved underneath them.  Outcomes, lease ids, journal and grant
  /// stream are byte-identical to the serial path (0 = legacy inline
  /// decide-at-close).  release() in this mode briefly blocks until earlier
  /// windows commit, preserving the serial capacity-evolution order.
  std::size_t eval_threads = 0;
  /// Opt-in, journaled drift-repair between decide windows (see above).
  ServiceRebalanceOptions rebalance;
  /// Sharded cell serving (docs/cells.md): with either knob > 0 the service
  /// partitions the cloud into rack-aligned cells, routes each accepted
  /// request to a cell at admission (O(cells) sketch scoring), and closes
  /// decision windows per cell — so a window's Algorithm 1/2 solve scans one
  /// cell's rows instead of the whole cloud.  A member its cell cannot hold
  /// spills to a flat plan over the full capacity view, so routed serving
  /// never refuses a request flat serving would grant.  Journal window
  /// records carry the cell id and replay re-plans inside the recorded cell,
  /// so the replay guarantee is unchanged.  Both zero = flat serving.
  std::size_t cells = 0;      ///< target cell count (cell::CellPartitionOptions)
  std::size_t cell_size = 0;  ///< target nodes per cell (alternative knob)
  std::size_t route_shortlist = 2;  ///< cells the router keeps per request
  bool cell_mode() const { return cells > 0 || cell_size > 0; }
};

namespace detail {

/// Cell scope for one window plan (cell mode only).  `partition` and
/// `capacity_col_sums` are immutable after service construction, so the
/// context can be read lock-free by pipelined evaluation workers; `cell` is
/// the window's routed cell (kNoCell = plan flat even in cell mode).
struct CellPlanContext {
  const cell::CellPartition* partition = nullptr;
  /// Per-cell, per-type column sums of the cloud's static max-capacity
  /// matrix (indexed by cell id) — the over-capacity rung's bound when the
  /// ladder runs inside a cell.  Precompute with cell_capacity_sums().
  const std::vector<std::vector<int>>* capacity_col_sums = nullptr;
  std::size_t cell = kNoCell;
};

/// Precomputes every cell's per-type max-capacity column sums from the
/// cloud's (static) max-capacity matrix, for CellPlanContext.
std::vector<std::vector<int>> cell_capacity_sums(
    const cell::CellPartition& partition, const cluster::Cloud& cloud);

/// One grant a planned window wants to apply: the (possibly clipped)
/// request it should be recorded under, the allocation, and which of the
/// plan's outcomes receives the lease id once the grant lands.
struct PlannedGrant {
  std::size_t outcome_index = 0;
  cluster::Request effective;
  cluster::Allocation allocation;
};

/// A fully evaluated — but uncommitted — decision window.  `outcomes` are
/// ordered shed-first then member order with `lease` still 0; `grants` are
/// in the exact order the serial path would call Cloud::grant (batch-step
/// admissions first, then ladder grants in member order), so committing
/// them assigns identical lease ids.  `base_epoch` is the snapshot epoch
/// the plan read; a commit against a different cloud epoch must re-plan.
struct WindowPlan {
  std::uint64_t window_id = 0;
  double decide_time = 0;
  std::uint64_t base_epoch = 0;
  std::vector<Outcome> outcomes;
  std::vector<PlannedGrant> grants;
};

/// Evaluates one closed window against an immutable snapshot: sheds `shed`
/// (deadline-expired) entries, then places `members` — Algorithm 2 for
/// |members| > 1, the per-request ladder (placement::plan_laddered) for a
/// singleton and for members the batch step could not admit.  Pure: reads
/// only the snapshot, mutates nothing, so any number of windows can be
/// planned concurrently against the same snapshot.
/// With a non-null `cell_ctx` naming a cell, placements run against the
/// cell's row-slice and sub-topology and scatter back to global node ids;
/// members the cell cannot hold spill to a flat plan (docs/cells.md).
WindowPlan plan_window(const cluster::CloudSnapshot& snap,
                       const std::vector<PendingEntry>& shed,
                       const std::vector<PendingEntry>& members,
                       std::uint64_t window_id, double decide_time,
                       const ServiceOptions& options,
                       const CellPlanContext* cell_ctx = nullptr);

/// Applies a plan's grants to the cloud in order, filling each granted
/// outcome's lease id.  With checks enabled, verifies the window's capacity
/// conservation like the serial path always did.
void commit_window(cluster::Cloud& cloud, WindowPlan& plan);

/// Decides one closed window serially: plan_window against an ephemeral
/// snapshot of `cloud`, then commit_window.  Grants mutate `cloud`;
/// outcomes are emitted shed-first, then in member order.  Shared verbatim
/// by the live dispatcher and the journal replayer, so a replayed window
/// cannot diverge from the original decision.  (`prov` is retained for
/// signature stability; placement goes through the same pure planner the
/// pipelined path uses.)
std::vector<Outcome> decide_window(placement::Provisioner& prov,
                                   cluster::Cloud& cloud,
                                   const std::vector<PendingEntry>& shed,
                                   const std::vector<PendingEntry>& members,
                                   std::uint64_t window_id, double decide_time,
                                   const ServiceOptions& options,
                                   const CellPlanContext* cell_ctx = nullptr);

/// A window enqueued for pipelined evaluation.  `ticket` is its commit slot
/// in the global close/release order; `reason` is a string literal for the
/// journal record.
struct EvalTask {
  std::uint64_t window_id = 0;
  std::uint64_t ticket = 0;
  double close_time = 0;
  const char* reason = "";
  std::size_t cell = kNoCell;  ///< the window's routed cell (cell mode)
  std::vector<PendingEntry> shed;
  std::vector<PendingEntry> members;
};

/// Window-membership pick under a queue discipline: indices into `pending`
/// of up to `max_batch` entries, in dispatch order (kFifo: seq order;
/// kPriority: priority desc, ties by seq; kSmallestFirst: VM count asc,
/// ties by seq).
std::vector<std::size_t> pick_window(const std::vector<PendingEntry>& pending,
                                     placement::QueueDiscipline discipline,
                                     std::size_t max_batch);

}  // namespace detail

class JournalWriter;

/// Aggregate counters (also exported through vcopt::obs as service/*).
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;           ///< admission-time sheds
  std::uint64_t queue_full = 0;
  std::uint64_t deadline_missed = 0;  ///< shed-on-deadline at window close
  std::uint64_t windows = 0;
  std::uint64_t decided = 0;        ///< outcomes emitted
  // Snapshot lifecycle (pipelined mode; all zero with eval_threads == 0).
  std::uint64_t snapshot_builds = 0;     ///< snapshots built + published
  std::uint64_t snapshot_reuses = 0;     ///< plans served by a published snapshot
  std::uint64_t snapshot_conflicts = 0;  ///< stale-epoch commits re-planned
  // Drift-repair pass (all zero unless options.rebalance.enabled).
  std::uint64_t rebalance_passes = 0;      ///< passes that applied >= 1 move
  std::uint64_t rebalance_migrations = 0;  ///< committed live migrations
};

class PlacementService {
 public:
  /// The cloud must outlive the service.  Throws std::invalid_argument on a
  /// bad options.policy spec or non-positive max_batch/queue_capacity.
  PlacementService(cluster::Cloud& cloud, ServiceOptions options);
  /// Stops the service (flushing pending work) if stop() was not called.
  ~PlacementService();
  PlacementService(const PlacementService&) = delete;
  PlacementService& operator=(const PlacementService&) = delete;

  /// Admits a request (journaled, queued for the open window), sheds it, or
  /// reports backpressure.  Thread-safe; never blocks on placement work
  /// except when a size-triggered window closes on this call (virtual mode)
  /// or the dispatcher holds the lock mid-decision (wall mode).
  /// Throws std::invalid_argument on a request/catalog shape mismatch.
  SubmitReceipt submit(const cluster::Request& r, const SubmitOptions& o = {});

  /// submit() + block until the request's outcome is decided (wall mode, or
  /// another thread advancing/flushing a virtual-mode service).  Returns
  /// nullopt when admission did not accept the request.  The outcome is
  /// consumed (take_outcomes will not return it again).
  std::optional<Outcome> submit_and_wait(const cluster::Request& r,
                                         const SubmitOptions& o = {});

  /// Virtual mode: advances the clock to `t` (monotonic; lower values are
  /// ignored), closing every window whose max_wait expires on the way, at
  /// its exact expiry instant.  No-op for the wall clock.
  void advance_to(double t);

  /// Closes and decides windows until no pending request remains (any mode).
  void flush();

  /// Graceful shutdown: rejects further submits (kQueueFull), flushes all
  /// pending windows, joins the wall-mode dispatcher, and — with checks
  /// enabled — validates journal/grant reconciliation (every accepted seq
  /// has exactly one outcome).  Idempotent.
  void stop();

  /// Releases a granted lease back to the cloud (journaled, so replay
  /// reproduces the capacity evolution).  Thread-safe.
  void release(cluster::LeaseId lease);

  /// Drains decided outcomes in seq order (each outcome is delivered exactly
  /// once across take_outcomes/submit_and_wait).
  std::vector<Outcome> take_outcomes();

  double now() const;              ///< current service-clock seconds
  std::size_t queue_depth() const; ///< pending (accepted, undecided) count
  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }
  const cluster::Cloud& cloud() const { return cloud_; }
  /// The currently published capacity snapshot (pipelined mode; null with
  /// eval_threads == 0).  Lock-free; safe from any thread — the snapshot is
  /// immutable and epoch-tagged, so concurrent readers always see one
  /// consistent capacity view even while grants commit.
  std::shared_ptr<const cluster::CloudSnapshot> snapshot_now() const {
    return snap_.load(std::memory_order_acquire);
  }
  /// Per-service SLO state (service/latency, service/shed_rate,
  /// service/dc_per_vm — empty when options.slo.enabled is false).
  const obs::SloTracker& slo() const { return slo_; }

 private:
  double wall_now_locked() const VCOPT_REQUIRES(mu_);
  /// Closes one window at `close_time` (lock held): picks members by
  /// discipline among the entries routed to `cell` (flat mode: every entry
  /// carries kNoCell, so the filter is a no-op), sheds expired entries from
  /// the whole queue, then either decides the window inline (serial mode:
  /// journals the window record write-ahead, decides, publishes the
  /// outcomes) or enqueues it for the evaluation pipeline.
  void close_window_locked(double close_time, const char* reason,
                           std::size_t cell) VCOPT_REQUIRES(mu_);
  /// Pending entries routed to `cell` (flat mode: the whole queue depth).
  std::size_t cell_depth_locked(std::size_t cell) const VCOPT_REQUIRES(mu_);
  /// The first cell (in admission order) whose pending count reached
  /// max_batch, if any — the wall dispatcher's size trigger.
  std::optional<std::size_t> full_cell_locked() const VCOPT_REQUIRES(mu_);
  /// Cell scope for a window routed to `cell`; nullopt outside cell mode.
  /// Reads only ctor-set immutable state, so it is safe from any thread
  /// (the pipelined evaluation workers call it without mu_).
  std::optional<detail::CellPlanContext> make_cell_ctx(std::size_t cell) const;
  /// Virtual mode: closes every window due at or before `t` (lock held).
  void run_windows_until_locked(double t) VCOPT_REQUIRES(mu_);
  double oldest_pending_locked() const VCOPT_REQUIRES(mu_);
  void dispatcher_loop();
  /// Pipelined-mode evaluation worker: pop a task, plan it lock-free
  /// against the published snapshot, commit at its ticket turn (re-planning
  /// on epoch conflict).
  void eval_loop();
  /// Stats/SLO/decided_ publication shared by the serial close path and the
  /// pipelined commit path.
  void publish_outcomes_locked(std::size_t shed_count,
                               std::size_t member_count, double sample_time,
                               std::vector<Outcome> outcomes)
      VCOPT_REQUIRES(mu_);
  /// Commits one planned window at its ticket turn: journal record, grants,
  /// epoch bump + snapshot republish, outcome publication.
  void commit_task_locked(const detail::EvalTask& task,
                          detail::WindowPlan& plan) VCOPT_REQUIRES(mu_);
  /// Rebuilds and publishes the snapshot for the current epoch.
  void publish_snapshot_locked(double build_time) VCOPT_REQUIRES(mu_);
  /// Opt-in drift-repair pass, invoked after every capacity mutation (window
  /// commit, release) at its point in the ticket order, so serial and
  /// pipelined runs rebalance at identical logical instants.  Journals the
  /// applied moves write-ahead; republishes the snapshot in pipelined mode.
  void maybe_rebalance_locked(double t) VCOPT_REQUIRES(mu_);
  /// Blocks until every enqueued window has committed (lock held).
  void wait_pipeline_drained_locked() VCOPT_REQUIRES(mu_);
  bool pipelined() const { return options_.eval_threads > 0; }

  cluster::Cloud& cloud_;        // internally synchronised under mu_ here
  ServiceOptions options_;       // immutable after construction
  obs::SloTracker slo_;          // internally synchronised
  /// Null without a recorder.  The pointer is set once in the ctor but the
  /// sampler itself is driven only under mu_ (window close / release).
  std::unique_ptr<cluster::ClusterSampler> sampler_ VCOPT_PT_GUARDED_BY(mu_);

  mutable util::Mutex mu_;
  util::CondVar dispatch_cv_;  // wakes the wall-mode dispatcher
  util::CondVar decided_cv_;   // wakes submit_and_wait callers
  placement::Provisioner prov_ VCOPT_GUARDED_BY(mu_);
  // Sharded cell serving (options_.cell_mode(); all null/empty otherwise).
  // Set once in the ctor before any worker thread starts.  The directory's
  // sketches mutate whenever the cloud's capacity does — and every capacity
  // mutation here happens under mu_ — while the partition it owns (and the
  // precomputed capacity sums) are immutable, so evaluation workers read
  // them lock-free through CellPlanContext.
  std::unique_ptr<cell::CellDirectory> directory_;
  std::unique_ptr<cell::CellRouter> router_;
  std::vector<std::vector<int>> cell_cap_sums_;
  std::unique_ptr<JournalWriter> journal_ VCOPT_GUARDED_BY(mu_)
      VCOPT_PT_GUARDED_BY(mu_);
  std::vector<PendingEntry> pending_ VCOPT_GUARDED_BY(mu_);
  /// seq -> outcome, until taken.
  std::map<std::uint64_t, Outcome> decided_ VCOPT_GUARDED_BY(mu_);
  ServiceStats stats_ VCOPT_GUARDED_BY(mu_);
  std::uint64_t next_seq_ VCOPT_GUARDED_BY(mu_) = 1;
  std::uint64_t next_window_ VCOPT_GUARDED_BY(mu_) = 1;
  // Drift-repair pass state (rebalance.enabled only).
  double last_rebalance_ VCOPT_GUARDED_BY(mu_) = 0;
  std::map<cluster::LeaseId, double> rebalance_cooldown_ VCOPT_GUARDED_BY(mu_);
  double virtual_now_ VCOPT_GUARDED_BY(mu_) = 0;
  bool stopping_ VCOPT_GUARDED_BY(mu_) = false;
  // Reconciliation ledger for the stop()-time VCOPT_VALIDATE (accepted seqs
  // must be covered exactly once by outcomes).
  std::vector<std::uint64_t> accepted_seqs_ VCOPT_GUARDED_BY(mu_);
  std::vector<std::uint64_t> decided_seqs_ VCOPT_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point wall_epoch_;  // ctor-set, then const
  std::thread dispatcher_;  // wall mode only; started in ctor, joined in stop

  // --- pipelined serving path (options_.eval_threads > 0) ----------------
  // Epoch of the cloud's capacity state: bumped under mu_ on every capacity
  // mutation (a window commit with grants, or a release).  The published
  // snapshot always carries the epoch it was built at, so a plan whose
  // base_epoch matches epoch_ at its commit turn saw current capacity.
  std::uint64_t epoch_ VCOPT_GUARDED_BY(mu_) = 0;
  // Commit tickets: window closes AND releases take the next ticket at the
  // point they occur in the call order, and apply their capacity mutation
  // only at their turn — so the cloud evolves exactly as it would have
  // under serial inline dispatch, grants get identical lease ids, and the
  // journal's window/release record order is the serial order.
  std::uint64_t next_ticket_ VCOPT_GUARDED_BY(mu_) = 0;
  std::uint64_t current_ticket_ VCOPT_GUARDED_BY(mu_) = 0;
  std::size_t inflight_windows_ VCOPT_GUARDED_BY(mu_) = 0;
  bool eval_stop_ VCOPT_GUARDED_BY(mu_) = false;
  std::deque<detail::EvalTask> eval_queue_ VCOPT_GUARDED_BY(mu_);
  util::CondVar eval_cv_;    // wakes evaluation workers (new task / stop)
  util::CondVar commit_cv_;  // ticket turns + pipeline-drain waits
  cluster::SnapshotArena snapshot_arena_;  // internally synchronised
  // Published snapshot, epoch-tagged; loaded lock-free by planners and
  // snapshot_now().  Stored only under mu_ (ctor + publish_snapshot_locked).
  std::atomic<std::shared_ptr<const cluster::CloudSnapshot>> snap_;
  std::vector<std::thread> eval_workers_;  // started in ctor, joined in stop
};

}  // namespace vcopt::service
