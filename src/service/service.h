// vcopt::service — a concurrent placement service in front of the cloud.
//
// The paper's Global Shortest Distance machinery (Def. 4, Algorithm 2) only
// pays off when several requests are decided *together*; this layer is where
// concurrent traffic is aggregated into decision windows so the batched path
// is reachable from a realistic serving front-end:
//
//   producers ──submit()──▶ admission queue ──window──▶ dispatch ──▶ grants
//                 │  (bounded, shed/queue-full)  │
//                 └── NDJSON journal (append before dispatch) ─▶ replay
//
// Micro-batching window: the open window closes when it holds `max_batch`
// accepted requests OR when the oldest pending request has waited `max_wait`
// seconds, whichever comes first (plus explicit flush()/stop()).  A closed
// window of size 1 is decided through the per-request Algorithm-1 ladder
// (Provisioner::submit_laddered); larger windows go through Algorithm 2
// (GlobalSubOpt::place_batch), with the ladder as the per-request fallback
// for window members the batch step could not admit.
//
// Clock modes:
//   kVirtual  deterministic simulated seconds, advanced only by advance_to()
//             (and implicit size-triggered closes).  Same submit sequence ⇒
//             bit-identical journal, decisions and grant records — the mode
//             the replay guarantee and all tests run in.
//   kWall     a background dispatcher thread closes windows on real time
//             (steady_clock seconds since construction).  Decisions are
//             journaled the same way; replaying such a journal in virtual
//             mode reproduces them (the journal records window membership,
//             not just arrival order).
//
// Thread-safety: every public method is safe to call from any thread; one
// mutex serialises admission, window bookkeeping, dispatch and the journal,
// so the journal order IS the admission order.  Determinism caveat: the
// default LadderOptions here zero the exact-ILP wall-clock budget — a rung
// classified by elapsed wall time would make replay time-dependent (see
// docs/service.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cloud.h"
#include "cluster/request.h"
#include "obs/request_context.h"
#include "obs/slo.h"
#include "placement/provisioner.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace vcopt::cluster {
class ClusterSampler;
}
namespace vcopt::obs {
class Recorder;
}

namespace vcopt::service {

/// "No deadline": infinitely far in the future on the service clock.
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// Traffic class of a submission; decides who is shed first under pressure.
enum class RequestClass {
  kInteractive,  ///< latency-sensitive; never watermark-shed
  kBatch,        ///< default; never watermark-shed
  kBestEffort,   ///< shed once the queue passes the shed watermark
};

const char* to_string(RequestClass c);
std::optional<RequestClass> parse_request_class(const std::string& name);

/// Per-submission options (the request itself carries id + VM counts).
struct SubmitOptions {
  int priority = 0;             ///< kPriority window ordering; larger = first
  double deadline = kNoDeadline;  ///< absolute service-clock instant; a
                                  ///< request not decided by then is shed
  RequestClass klass = RequestClass::kBatch;
};

/// Admission-control verdict, returned synchronously from submit().
enum class AdmissionStatus {
  kAccepted,   ///< journaled and pending; an Outcome will follow
  kShed,       ///< dropped by policy (dead-on-arrival deadline, or
               ///< best-effort class above the shed watermark)
  kQueueFull,  ///< bounded queue at capacity — explicit backpressure
};

const char* to_string(AdmissionStatus s);

/// Receipt for one submit(); `seq` identifies the accepted request in the
/// journal and in its eventual Outcome (0 when not accepted).
struct SubmitReceipt {
  AdmissionStatus admission = AdmissionStatus::kQueueFull;
  std::uint64_t seq = 0;
};

/// Terminal fate of an accepted request.
enum class OutcomeKind {
  kGranted,        ///< full allocation from the batch step or exact rung
  kDegraded,       ///< full allocation from a fallback ladder rung
  kPartial,        ///< best-effort allocation, fewer VMs than requested
  kAbandoned,      ///< nothing could be placed
  kShedDeadline,   ///< deadline passed before its window was decided
  kRejectedEmpty,  ///< zero-VM request
  kRejectedOverCapacity,  ///< exceeds total capacity, can never be served
};

const char* to_string(OutcomeKind k);
/// True when the outcome carries a live lease (granted/degraded/partial).
bool has_lease(OutcomeKind k);

/// Terminal decision for one accepted request.
struct Outcome {
  std::uint64_t seq = 0;
  std::uint64_t request_id = 0;
  std::uint64_t window_id = 0;
  /// Request-scoped trace id (obs::derive_trace_id of seq and request id):
  /// links this outcome to its journal submit record and stage spans.
  std::uint64_t trace_id = 0;
  OutcomeKind kind = OutcomeKind::kAbandoned;
  cluster::LeaseId lease = 0;  ///< 0 unless has_lease(kind)
  std::size_t central = 0;
  double distance = 0;
  int requested_vms = 0;
  int granted_vms = 0;
  double submit_time = 0;
  double decide_time = 0;
};

/// An accepted submission waiting for its window (also the unit the journal
/// and the replay driver exchange).
struct PendingEntry {
  cluster::Request request;
  SubmitOptions options;
  std::uint64_t seq = 0;
  double submit_time = 0;
  std::uint64_t trace_id = 0;  ///< carried through to the Outcome
};

enum class ClockMode {
  kVirtual,  ///< advance_to()-driven simulated seconds (deterministic)
  kWall,     ///< background dispatcher on steady_clock seconds
};

/// Declared objectives for the per-service SloTracker.  Every threshold is
/// on the service clock / DC units; windows and burn thresholds follow
/// obs::SloSpec semantics.  Always on (the tracker is cheap); set
/// `enabled = false` to skip declaration entirely.
struct ServiceSloOptions {
  bool enabled = true;
  /// service/latency: placement latency (decide - submit) above this many
  /// seconds is an SLO violation...
  double latency_threshold = 1.0;
  /// ... and at most this fraction of decisions may violate it.
  double latency_objective = 0.01;
  /// service/shed_rate: at most this fraction of submissions may be refused
  /// (shed or queue-full) at admission.
  double shed_objective = 0.05;
  /// service/dc_per_vm: granted DC per VM above this is a violation...
  double dc_threshold = 4.0;
  /// ... allowed for at most this fraction of grants.
  double dc_objective = 0.25;
  double short_window = 60;
  double long_window = 600;
  double burn_alert = 2.0;
  std::size_t min_events = 10;
};

struct ServiceOptions {
  std::size_t max_batch = 8;   ///< window closes at this many pending
  double max_wait = 0.010;     ///< ... or when the oldest waited this long (s)
  std::size_t queue_capacity = 256;  ///< pending bound; beyond => kQueueFull
  double shed_watermark = 0.75;  ///< occupancy fraction above which
                                 ///< kBestEffort submissions are shed
  placement::QueueDiscipline discipline = placement::QueueDiscipline::kFifo;
  /// Ladder for size-1 windows and batch-step fallbacks.  The exact-ILP rung
  /// is disabled by default (budget 0): its wall-clock classification would
  /// break the deterministic-replay guarantee.
  placement::LadderOptions ladder{.ilp_budget_ms = 0};
  std::string policy = "online-heuristic";  ///< placement::make_policy spec
  ClockMode clock = ClockMode::kVirtual;
  std::ostream* journal = nullptr;  ///< NDJSON sink; null = no journal
  ServiceSloOptions slo;  ///< objectives for the per-service SloTracker
  /// Optional time-series recorder: when set, a cluster::ClusterSampler
  /// records per-node load/free, fragmentation and per-lease DC on every
  /// window close and release (at most once per `sample_period` service
  /// seconds).  Must outlive the service.
  obs::Recorder* recorder = nullptr;
  double sample_period = 1.0;
};

namespace detail {

/// Decides one closed window: sheds `shed` (deadline-expired) entries, then
/// places `members` — Algorithm 2 for |members| > 1, the per-request ladder
/// for a singleton and for members the batch step could not admit.  Grants
/// mutate `cloud` via `prov`; outcomes are emitted shed-first, then in
/// member order.  Shared verbatim by the live dispatcher and the journal
/// replayer, so a replayed window cannot diverge from the original decision.
std::vector<Outcome> decide_window(placement::Provisioner& prov,
                                   cluster::Cloud& cloud,
                                   const std::vector<PendingEntry>& shed,
                                   const std::vector<PendingEntry>& members,
                                   std::uint64_t window_id, double decide_time,
                                   const ServiceOptions& options);

/// Window-membership pick under a queue discipline: indices into `pending`
/// of up to `max_batch` entries, in dispatch order (kFifo: seq order;
/// kPriority: priority desc, ties by seq; kSmallestFirst: VM count asc,
/// ties by seq).
std::vector<std::size_t> pick_window(const std::vector<PendingEntry>& pending,
                                     placement::QueueDiscipline discipline,
                                     std::size_t max_batch);

}  // namespace detail

class JournalWriter;

/// Aggregate counters (also exported through vcopt::obs as service/*).
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;           ///< admission-time sheds
  std::uint64_t queue_full = 0;
  std::uint64_t deadline_missed = 0;  ///< shed-on-deadline at window close
  std::uint64_t windows = 0;
  std::uint64_t decided = 0;        ///< outcomes emitted
};

class PlacementService {
 public:
  /// The cloud must outlive the service.  Throws std::invalid_argument on a
  /// bad options.policy spec or non-positive max_batch/queue_capacity.
  PlacementService(cluster::Cloud& cloud, ServiceOptions options);
  /// Stops the service (flushing pending work) if stop() was not called.
  ~PlacementService();
  PlacementService(const PlacementService&) = delete;
  PlacementService& operator=(const PlacementService&) = delete;

  /// Admits a request (journaled, queued for the open window), sheds it, or
  /// reports backpressure.  Thread-safe; never blocks on placement work
  /// except when a size-triggered window closes on this call (virtual mode)
  /// or the dispatcher holds the lock mid-decision (wall mode).
  /// Throws std::invalid_argument on a request/catalog shape mismatch.
  SubmitReceipt submit(const cluster::Request& r, const SubmitOptions& o = {});

  /// submit() + block until the request's outcome is decided (wall mode, or
  /// another thread advancing/flushing a virtual-mode service).  Returns
  /// nullopt when admission did not accept the request.  The outcome is
  /// consumed (take_outcomes will not return it again).
  std::optional<Outcome> submit_and_wait(const cluster::Request& r,
                                         const SubmitOptions& o = {});

  /// Virtual mode: advances the clock to `t` (monotonic; lower values are
  /// ignored), closing every window whose max_wait expires on the way, at
  /// its exact expiry instant.  No-op for the wall clock.
  void advance_to(double t);

  /// Closes and decides windows until no pending request remains (any mode).
  void flush();

  /// Graceful shutdown: rejects further submits (kQueueFull), flushes all
  /// pending windows, joins the wall-mode dispatcher, and — with checks
  /// enabled — validates journal/grant reconciliation (every accepted seq
  /// has exactly one outcome).  Idempotent.
  void stop();

  /// Releases a granted lease back to the cloud (journaled, so replay
  /// reproduces the capacity evolution).  Thread-safe.
  void release(cluster::LeaseId lease);

  /// Drains decided outcomes in seq order (each outcome is delivered exactly
  /// once across take_outcomes/submit_and_wait).
  std::vector<Outcome> take_outcomes();

  double now() const;              ///< current service-clock seconds
  std::size_t queue_depth() const; ///< pending (accepted, undecided) count
  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }
  const cluster::Cloud& cloud() const { return cloud_; }
  /// Per-service SLO state (service/latency, service/shed_rate,
  /// service/dc_per_vm — empty when options.slo.enabled is false).
  const obs::SloTracker& slo() const { return slo_; }

 private:
  double wall_now_locked() const VCOPT_REQUIRES(mu_);
  /// Closes one window at `close_time` (lock held): picks members by
  /// discipline, sheds expired entries, journals the window record, decides
  /// it, and publishes the outcomes.
  void close_window_locked(double close_time, const char* reason)
      VCOPT_REQUIRES(mu_);
  /// Virtual mode: closes every window due at or before `t` (lock held).
  void run_windows_until_locked(double t) VCOPT_REQUIRES(mu_);
  double oldest_pending_locked() const VCOPT_REQUIRES(mu_);
  void dispatcher_loop();

  cluster::Cloud& cloud_;        // internally synchronised under mu_ here
  ServiceOptions options_;       // immutable after construction
  obs::SloTracker slo_;          // internally synchronised
  /// Null without a recorder.  The pointer is set once in the ctor but the
  /// sampler itself is driven only under mu_ (window close / release).
  std::unique_ptr<cluster::ClusterSampler> sampler_ VCOPT_PT_GUARDED_BY(mu_);

  mutable util::Mutex mu_;
  util::CondVar dispatch_cv_;  // wakes the wall-mode dispatcher
  util::CondVar decided_cv_;   // wakes submit_and_wait callers
  placement::Provisioner prov_ VCOPT_GUARDED_BY(mu_);
  std::unique_ptr<JournalWriter> journal_ VCOPT_GUARDED_BY(mu_)
      VCOPT_PT_GUARDED_BY(mu_);
  std::vector<PendingEntry> pending_ VCOPT_GUARDED_BY(mu_);
  /// seq -> outcome, until taken.
  std::map<std::uint64_t, Outcome> decided_ VCOPT_GUARDED_BY(mu_);
  ServiceStats stats_ VCOPT_GUARDED_BY(mu_);
  std::uint64_t next_seq_ VCOPT_GUARDED_BY(mu_) = 1;
  std::uint64_t next_window_ VCOPT_GUARDED_BY(mu_) = 1;
  double virtual_now_ VCOPT_GUARDED_BY(mu_) = 0;
  bool stopping_ VCOPT_GUARDED_BY(mu_) = false;
  // Reconciliation ledger for the stop()-time VCOPT_VALIDATE (accepted seqs
  // must be covered exactly once by outcomes).
  std::vector<std::uint64_t> accepted_seqs_ VCOPT_GUARDED_BY(mu_);
  std::vector<std::uint64_t> decided_seqs_ VCOPT_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point wall_epoch_;  // ctor-set, then const
  std::thread dispatcher_;  // wall mode only; started in ctor, joined in stop
};

}  // namespace vcopt::service
