#include "service/service.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "cell/directory.h"
#include "cell/partition.h"
#include "cell/router.h"
#include "check/check.h"
#include "check/validators.h"
#include "cluster/sampler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "placement/global_subopt.h"
#include "rebalance/rebalancer.h"
#include "service/journal.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace vcopt::service {

namespace {

struct ServiceMetrics {
  obs::Gauge& queue_depth;
  obs::HistogramMetric& batch_size;
  obs::HistogramMetric& latency;
  obs::Counter& accepted;
  obs::Counter& shed;
  obs::Counter& queue_full;
  obs::Counter& deadline_miss;
  obs::Counter& windows;
  obs::Counter& decided;
  // Per-stage wall-clock latency of the service ladder (seconds): admission
  // bookkeeping, service-clock queue wait, window formation, the placement
  // solve, and outcome publication.  Attribution for "why was this grant
  // slow" — the queue stage is service-clock, the rest are measured wall
  // durations of the corresponding code sections.
  obs::HistogramMetric& stage_admit;
  obs::HistogramMetric& stage_queue;
  obs::HistogramMetric& stage_batch;
  obs::HistogramMetric& stage_solve;
  obs::HistogramMetric& stage_commit;
  // Snapshot lifecycle of the pipelined serving path: snapshots built and
  // published, plans served from a published snapshot without rebuilding,
  // stale-epoch commits that had to re-plan, and the age (service-clock
  // seconds) of the snapshot each plan read.
  obs::Counter& snapshot_builds;
  obs::Counter& snapshot_reuses;
  obs::Counter& snapshot_conflicts;
  obs::Gauge& snapshot_age;

  static ServiceMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static const std::vector<double> stage_buckets =
        obs::MetricsRegistry::exponential_buckets(1e-6, 2.0, 24);
    static ServiceMetrics m{
        reg.gauge("service/queue_depth"),
        reg.histogram("service/batch_size",
                      obs::MetricsRegistry::linear_buckets(1, 32, 32)),
        reg.histogram(
            "service/latency_seconds",
            obs::MetricsRegistry::exponential_buckets(1e-4, 2.0, 20)),
        reg.counter("service/accepted"),
        reg.counter("service/shed"),
        reg.counter("service/queue_full"),
        reg.counter("service/deadline_miss"),
        reg.counter("service/windows"),
        reg.counter("service/decided"),
        reg.histogram("service/stage/admit", stage_buckets),
        reg.histogram("service/stage/queue", stage_buckets),
        reg.histogram("service/stage/batch", stage_buckets),
        reg.histogram("service/stage/solve", stage_buckets),
        reg.histogram("service/stage/commit", stage_buckets),
        reg.counter("service/snapshot_builds"),
        reg.counter("service/snapshot_reuses"),
        reg.counter("service/snapshot_conflicts"),
        reg.gauge("service/snapshot_age"),
    };
    return m;
  }
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  // Stage-latency metric helper: measured wall durations feed histograms
  // only, never the journal or a placement decision.
  const auto now = std::chrono::steady_clock::now();  // NOLINT(vcopt-wall-clock)
  return std::chrono::duration<double>(now - t0).count();
}

Outcome shed_outcome(const PendingEntry& e, std::uint64_t window_id,
                     double decide_time) {
  Outcome o;
  o.seq = e.seq;
  o.request_id = e.request.id();
  o.window_id = window_id;
  o.trace_id = e.trace_id;
  o.kind = OutcomeKind::kShedDeadline;
  o.requested_vms = e.request.total_vms();
  o.submit_time = e.submit_time;
  o.decide_time = decide_time;
  return o;
}

OutcomeKind kind_from_status(placement::PlacementStatus s) {
  using placement::PlacementStatus;
  switch (s) {
    case PlacementStatus::kGranted: return OutcomeKind::kGranted;
    case PlacementStatus::kDegraded: return OutcomeKind::kDegraded;
    case PlacementStatus::kPartial: return OutcomeKind::kPartial;
    case PlacementStatus::kRejectedEmpty: return OutcomeKind::kRejectedEmpty;
    case PlacementStatus::kRejectedOverCapacity:
      return OutcomeKind::kRejectedOverCapacity;
    case PlacementStatus::kAbandoned: return OutcomeKind::kAbandoned;
    default:
      // kQueued/kRepaired/kRejectedShape cannot come out of submit_laddered
      // on a shape-checked request; treat defensively as abandoned.
      VCOPT_DCHECK(false) << "unexpected ladder status "
                          << placement::to_string(s);
      return OutcomeKind::kAbandoned;
  }
}

}  // namespace

const char* to_string(RequestClass c) {
  switch (c) {
    case RequestClass::kInteractive: return "interactive";
    case RequestClass::kBatch: return "batch";
    case RequestClass::kBestEffort: return "best-effort";
  }
  return "?";
}

std::optional<RequestClass> parse_request_class(const std::string& name) {
  for (RequestClass c : {RequestClass::kInteractive, RequestClass::kBatch,
                         RequestClass::kBestEffort}) {
    if (name == to_string(c)) return c;
  }
  return std::nullopt;
}

const char* to_string(AdmissionStatus s) {
  switch (s) {
    case AdmissionStatus::kAccepted: return "accepted";
    case AdmissionStatus::kShed: return "shed";
    case AdmissionStatus::kQueueFull: return "queue-full";
  }
  return "?";
}

const char* to_string(OutcomeKind k) {
  switch (k) {
    case OutcomeKind::kGranted: return "granted";
    case OutcomeKind::kDegraded: return "degraded";
    case OutcomeKind::kPartial: return "partial";
    case OutcomeKind::kAbandoned: return "abandoned";
    case OutcomeKind::kShedDeadline: return "shed-deadline";
    case OutcomeKind::kRejectedEmpty: return "rejected-empty";
    case OutcomeKind::kRejectedOverCapacity: return "rejected-over-capacity";
  }
  return "?";
}

bool has_lease(OutcomeKind k) {
  return k == OutcomeKind::kGranted || k == OutcomeKind::kDegraded ||
         k == OutcomeKind::kPartial;
}

namespace detail {

std::vector<std::vector<int>> cell_capacity_sums(
    const cell::CellPartition& partition, const cluster::Cloud& cloud) {
  const util::IntMatrix& max = cloud.inventory().max_capacity();
  std::vector<std::vector<int>> sums;
  sums.reserve(partition.cell_count());
  for (std::size_t c = 0; c < partition.cell_count(); ++c) {
    sums.push_back(partition.cell_capacity_col_sums(c, max));
  }
  return sums;
}

std::vector<std::size_t> pick_window(const std::vector<PendingEntry>& pending,
                                     placement::QueueDiscipline discipline,
                                     std::size_t max_batch) {
  std::vector<std::size_t> order(pending.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  switch (discipline) {
    case placement::QueueDiscipline::kFifo:
      break;  // pending_ is kept in seq (admission) order
    case placement::QueueDiscipline::kPriority:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return pending[a].options.priority >
                                pending[b].options.priority;
                       });
      break;
    case placement::QueueDiscipline::kSmallestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return pending[a].request.total_vms() <
                                pending[b].request.total_vms();
                       });
      break;
  }
  if (order.size() > max_batch) order.resize(max_batch);
  return order;
}

WindowPlan plan_window(const cluster::CloudSnapshot& snap,
                       const std::vector<PendingEntry>& shed,
                       const std::vector<PendingEntry>& members,
                       std::uint64_t window_id, double decide_time,
                       const ServiceOptions& options,
                       const CellPlanContext* cell_ctx) {
  VCOPT_TRACE_SPAN("service/plan_window");
  WindowPlan plan;
  plan.window_id = window_id;
  plan.decide_time = decide_time;
  plan.base_epoch = snap.epoch;
  plan.outcomes.reserve(shed.size() + members.size());
  for (const PendingEntry& e : shed) {
    VCOPT_DCHECK(e.options.deadline <= decide_time)
        << "shed entry seq " << e.seq << " has live deadline";
    plan.outcomes.push_back(shed_outcome(e, window_id, decide_time));
  }
  if (members.empty()) return plan;

  // Working capacity view, debited as grants are planned: each member sees
  // exactly what the serial path's cloud.remaining() would have shown it.
  util::IntMatrix avail = snap.remaining;
  const cluster::Topology& topology = *snap.topology;

  // Cell-scoped planning (docs/cells.md): when the window was routed to a
  // cell, every solve below runs on the cell's row-slice of the working view
  // against the cell's sub-topology (intra-cell distances equal the global
  // ones, so DC needs no correction) and scatters its allocation back to
  // global node ids.  The slice is re-taken from `avail` before each solve
  // so earlier grants in the window are reflected.
  const bool in_cell = cell_ctx != nullptr && cell_ctx->partition != nullptr &&
                       cell_ctx->cell != kNoCell;
  const cell::CellPartition* part = in_cell ? cell_ctx->partition : nullptr;
  const std::size_t cell_id = in_cell ? cell_ctx->cell : 0;
  const auto slice_cell = [&](const util::IntMatrix& src) {
    const cell::Cell& cl = part->cell(cell_id);
    util::IntMatrix local(cl.nodes.size(), src.cols());
    for (std::size_t i = 0; i < cl.nodes.size(); ++i) {
      for (std::size_t j = 0; j < src.cols(); ++j) {
        local(i, j) = src(cl.nodes[i], j);
      }
    }
    return local;
  };
  const auto to_global = [&](placement::Placement& pl) {
    pl.allocation = cluster::Allocation(
        part->to_global(cell_id, pl.allocation.counts(), avail.rows()));
    pl.central = part->cell(cell_id).nodes[pl.central];
  };

  // Batch step (Algorithm 2) for windows of size > 1: every non-empty member
  // goes into place_batch; the per-request ladder picks up whatever the batch
  // step could not admit (and classifies empty/over-capacity requests).
  // Grants are recorded batch-admissions-first, then ladder grants in member
  // order — the exact Cloud::grant order of serial dispatch, so commit
  // assigns identical lease ids.
  std::vector<std::optional<Outcome>> slot(members.size());
  if (members.size() > 1) {
    std::vector<std::size_t> batch_pos;
    std::vector<cluster::Request> batch;
    batch_pos.reserve(members.size());
    batch.reserve(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i].request.empty()) continue;
      batch_pos.push_back(i);
      batch.push_back(members[i].request);
    }
    placement::GlobalSubOpt gso;
    placement::BatchPlacement placed;
    if (in_cell) {
      const util::IntMatrix local = slice_cell(avail);
      placed = gso.place_batch(batch, local, part->cell_topology(cell_id));
      for (placement::Placement& pl : placed.placements) to_global(pl);
    } else {
      placed = gso.place_batch(batch, avail, topology);
    }
    for (std::size_t k = 0; k < placed.admitted.size(); ++k) {
      const std::size_t i = batch_pos[placed.admitted[k]];
      const placement::Placement& pl = placed.placements[k];
      VCOPT_VALIDATE(check::validate_allocation(
          pl.allocation.counts(), members[i].request.counts(), avail));
      avail -= pl.allocation.counts();
      Outcome o;
      o.seq = members[i].seq;
      o.request_id = members[i].request.id();
      o.window_id = window_id;
      o.trace_id = members[i].trace_id;
      o.kind = OutcomeKind::kGranted;
      o.central = pl.central;
      o.distance = pl.distance;
      o.requested_vms = members[i].request.total_vms();
      o.granted_vms = pl.allocation.total_vms();
      o.submit_time = members[i].submit_time;
      o.decide_time = decide_time;
      slot[i] = std::move(o);
      plan.grants.push_back(PlannedGrant{shed.size() + i, members[i].request,
                                         pl.allocation});
    }
  }

  // Ladder fallback (Algorithm 1 rungs) for a singleton window and for
  // members the batch step left behind, in member (dispatch) order.  The
  // policy is rebuilt per plan (stateless by construction), so concurrent
  // plans never share mutable placement state.
  std::unique_ptr<placement::PlacementPolicy> policy;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (slot[i]) continue;
    if (!policy) policy = placement::make_policy(options.policy);
    placement::LadderPlan lp;
    if (in_cell) {
      const util::IntMatrix local = slice_cell(avail);
      lp = placement::plan_laddered(
          members[i].request, local, part->cell_topology(cell_id),
          cell_ctx->capacity_col_sums->at(cell_id), *policy, options.ladder);
      if (lp.placement) {
        to_global(*lp.placement);
      } else if (lp.status == placement::PlacementStatus::kAbandoned ||
                 lp.status ==
                     placement::PlacementStatus::kRejectedOverCapacity) {
        // Spill: the cell cannot hold this member at all — retry against the
        // full capacity view, so routed serving never refuses a request flat
        // serving would grant (the exactness net of docs/cells.md).
        static obs::Counter& window_spills =
            obs::MetricsRegistry::global().counter("cell/window_spills");
        window_spills.add();
        lp = placement::plan_laddered(members[i].request, avail, topology,
                                      snap.capacity_col_sums, *policy,
                                      options.ladder);
      }
    } else {
      lp = placement::plan_laddered(members[i].request, avail, topology,
                                    snap.capacity_col_sums, *policy,
                                    options.ladder);
    }
    Outcome o;
    o.seq = members[i].seq;
    o.request_id = members[i].request.id();
    o.window_id = window_id;
    o.trace_id = members[i].trace_id;
    o.kind = kind_from_status(lp.status);
    if (lp.placement) {
      o.central = lp.placement->central;
      o.distance = lp.placement->distance;
      avail -= lp.placement->allocation.counts();
      plan.grants.push_back(PlannedGrant{shed.size() + i,
                                         std::move(*lp.effective),
                                         std::move(lp.placement->allocation)});
    }
    o.requested_vms = lp.requested_vms;
    o.granted_vms = lp.granted_vms;
    o.submit_time = members[i].submit_time;
    o.decide_time = decide_time;
    slot[i] = std::move(o);
  }

  for (std::size_t i = 0; i < members.size(); ++i) {
    VCOPT_INVARIANT(!has_lease(slot[i]->kind) ||
                    members[i].options.deadline > decide_time)
        << "window " << window_id << " granted seq " << members[i].seq
        << " after its deadline";
    plan.outcomes.push_back(std::move(*slot[i]));
  }
  return plan;
}

void commit_window(cluster::Cloud& cloud, WindowPlan& plan) {
  VCOPT_TRACE_SPAN("service/commit_window");
#if VCOPT_ENABLE_CHECKS
  const util::IntMatrix before = cloud.remaining();
#endif
  for (PlannedGrant& g : plan.grants) {
    const cluster::LeaseId lease = cloud.grant(g.effective, g.allocation);
    plan.outcomes[g.outcome_index].lease = lease;
  }
#if VCOPT_ENABLE_CHECKS
  // Batch capacity conservation: what this window debited from the cloud is
  // exactly the sum of the allocations it granted.
  util::IntMatrix granted(before.rows(), before.cols());
  for (const Outcome& o : plan.outcomes) {
    if (has_lease(o.kind)) granted += cloud.lease_allocation(o.lease).counts();
  }
  VCOPT_VALIDATE(check::validate_fits(granted, before));
  util::IntMatrix expected = before;
  expected -= granted;
  VCOPT_INVARIANT(expected == cloud.remaining())
      << "window " << plan.window_id << " broke capacity conservation";
#endif
}

std::vector<Outcome> decide_window(placement::Provisioner& prov,
                                   cluster::Cloud& cloud,
                                   const std::vector<PendingEntry>& shed,
                                   const std::vector<PendingEntry>& members,
                                   std::uint64_t window_id, double decide_time,
                                   const ServiceOptions& options,
                                   const CellPlanContext* cell_ctx) {
  VCOPT_TRACE_SPAN("service/decide_window");
  (void)prov;  // placement now flows through the shared pure planner
  cluster::SnapshotArena arena;
  const std::shared_ptr<const cluster::CloudSnapshot> snap =
      arena.build(cloud, /*epoch=*/0, decide_time);
  WindowPlan plan = plan_window(*snap, shed, members, window_id, decide_time,
                                options, cell_ctx);
  commit_window(cloud, plan);
  return std::move(plan.outcomes);
}

}  // namespace detail

PlacementService::PlacementService(cluster::Cloud& cloud,
                                   ServiceOptions options)
    : cloud_(cloud),
      options_(std::move(options)),
      prov_(cloud, placement::make_policy(options_.policy),
            options_.discipline) {
  if (options_.max_batch == 0) {
    throw std::invalid_argument("PlacementService: max_batch must be > 0");
  }
  if (options_.queue_capacity == 0) {
    throw std::invalid_argument("PlacementService: queue_capacity must be > 0");
  }
  if (!(options_.max_wait > 0)) {
    throw std::invalid_argument("PlacementService: max_wait must be > 0");
  }
  if (options_.journal) {
    journal_ = std::make_unique<JournalWriter>(*options_.journal);
  }
  if (options_.cell_mode()) {
    cell::CellPartitionOptions po;
    po.target_cells = options_.cells;
    po.cell_size = options_.cell_size;
    directory_ = std::make_unique<cell::CellDirectory>(cloud_, po);
    cell::CellRouterOptions ro;
    ro.shortlist = std::max<std::size_t>(1, options_.route_shortlist);
    router_ = std::make_unique<cell::CellRouter>(ro);
    cell_cap_sums_ = detail::cell_capacity_sums(directory_->partition(), cloud_);
  }
  if (options_.slo.enabled) {
    const ServiceSloOptions& s = options_.slo;
    obs::SloSpec base;
    base.short_window = s.short_window;
    base.long_window = s.long_window;
    base.burn_alert = s.burn_alert;
    base.min_events = s.min_events;
    obs::SloSpec latency = base;
    latency.name = "service/latency";
    latency.description = "placement latency (decide - submit) within bound";
    latency.objective = s.latency_objective;
    latency.threshold = s.latency_threshold;
    slo_.declare(latency);
    obs::SloSpec shed = base;
    shed.name = "service/shed_rate";
    shed.description = "submissions refused at admission (shed/queue-full)";
    shed.objective = s.shed_objective;
    slo_.declare(shed);
    obs::SloSpec dc = base;
    dc.name = "service/dc_per_vm";
    dc.description = "granted cluster distance per VM within bound";
    dc.objective = s.dc_objective;
    dc.threshold = s.dc_threshold;
    slo_.declare(dc);
  }
  if (options_.recorder != nullptr) {
    cluster::ClusterSamplerOptions so;
    so.period = options_.sample_period;
    sampler_ = std::make_unique<cluster::ClusterSampler>(
        cloud_, *options_.recorder, so);
  }
  // Epoch for kWall mode's service clock; kVirtual (the replay mode) never
  // reads it after construction.
  wall_epoch_ = std::chrono::steady_clock::now();  // NOLINT(vcopt-wall-clock)
  if (options_.clock == ClockMode::kWall) {
    dispatcher_ = std::thread(&PlacementService::dispatcher_loop, this);
  }
  if (pipelined()) {
    {
      // Publish the epoch-0 snapshot before any worker can look for one.
      util::MutexLock lk(mu_);
      publish_snapshot_locked(/*build_time=*/0.0);
    }
    eval_workers_.reserve(options_.eval_threads);
    for (std::size_t i = 0; i < options_.eval_threads; ++i) {
      eval_workers_.emplace_back(&PlacementService::eval_loop, this);
    }
  }
}

PlacementService::~PlacementService() { stop(); }

double PlacementService::wall_now_locked() const {
  // kWall mode's service clock.  Virtual-mode (deterministic replay) code
  // paths never reach this.
  const auto now = std::chrono::steady_clock::now();  // NOLINT(vcopt-wall-clock)
  return std::chrono::duration<double>(now - wall_epoch_).count();
}

SubmitReceipt PlacementService::submit(const cluster::Request& r,
                                       const SubmitOptions& o) {
  if (r.type_count() != cloud_.type_count()) {
    throw std::invalid_argument(
        "PlacementService::submit: request has " +
        std::to_string(r.type_count()) + " VM types, catalog has " +
        std::to_string(cloud_.type_count()));
  }
  auto& m = ServiceMetrics::get();
  // Stage metric only (service/stage/admit).
  const auto admit_start = std::chrono::steady_clock::now();  // NOLINT(vcopt-wall-clock)
  util::MutexLock lk(mu_);
  const double now =
      options_.clock == ClockMode::kVirtual ? virtual_now_ : wall_now_locked();
  if (stopping_ || pending_.size() >= options_.queue_capacity) {
    ++stats_.queue_full;
    m.queue_full.add();
    if (options_.slo.enabled) {
      slo_.record_event("service/shed_rate", now, /*good=*/false);
    }
    return {AdmissionStatus::kQueueFull, 0};
  }
  const bool dead_on_arrival = o.deadline <= now;
  const bool watermark_shed =
      o.klass == RequestClass::kBestEffort &&
      static_cast<double>(pending_.size()) >=
          options_.shed_watermark * static_cast<double>(options_.queue_capacity);
  if (dead_on_arrival || watermark_shed) {
    ++stats_.shed;
    m.shed.add();
    if (options_.slo.enabled) {
      slo_.record_event("service/shed_rate", now, /*good=*/false);
    }
    return {AdmissionStatus::kShed, 0};
  }

  const std::uint64_t seq = next_seq_++;
  // The submit-time priority wins over whatever the caller baked into the
  // Request, so the journal (which records SubmitOptions) replays exactly.
  PendingEntry entry{cluster::Request(r.counts(), r.id(), o.priority), o, seq,
                     now, obs::derive_trace_id(seq, r.id())};
  if (directory_) {
    // Route-then-place: pick the cell whose sketch scores best for this
    // request; kNoCell (no cell admits it) plans flat at window close.
    // Routing is not journaled — replay re-plans inside the cell the window
    // record names, not whatever a re-route would pick.
    const cell::RouteDecision route =
        router_->route(entry.request, *directory_);
    if (!route.shortlist.empty()) entry.cell = route.shortlist.front();
  }
  const std::size_t routed_cell = entry.cell;
  if (journal_) journal_->submit(seq, entry.request, o, now, entry.trace_id);
  pending_.push_back(std::move(entry));
  accepted_seqs_.push_back(seq);
  ++stats_.accepted;
  m.accepted.add();
  m.queue_depth.set(static_cast<double>(pending_.size()));
  if (options_.slo.enabled) {
    slo_.record_event("service/shed_rate", now, /*good=*/true);
  }
  m.stage_admit.observe(seconds_since(admit_start));

  if (options_.clock == ClockMode::kVirtual) {
    if (cell_depth_locked(routed_cell) >= options_.max_batch) {
      close_window_locked(virtual_now_, "size", routed_cell);
    }
  } else {
    dispatch_cv_.notify_one();
  }
  return {AdmissionStatus::kAccepted, seq};
}

std::optional<Outcome> PlacementService::submit_and_wait(
    const cluster::Request& r, const SubmitOptions& o) {
  const SubmitReceipt receipt = submit(r, o);
  if (receipt.admission != AdmissionStatus::kAccepted) return std::nullopt;
  util::MutexLock lk(mu_);
  while (decided_.count(receipt.seq) == 0) decided_cv_.wait(mu_);
  auto it = decided_.find(receipt.seq);
  Outcome out = std::move(it->second);
  decided_.erase(it);
  return out;
}

void PlacementService::advance_to(double t) {
  util::MutexLock lk(mu_);
  if (options_.clock != ClockMode::kVirtual) return;
  if (t <= virtual_now_) return;  // the clock is monotonic
  run_windows_until_locked(t);
  virtual_now_ = std::max(virtual_now_, t);
}

void PlacementService::flush() {
  util::MutexLock lk(mu_);
  const double now =
      options_.clock == ClockMode::kVirtual ? virtual_now_ : wall_now_locked();
  while (!pending_.empty()) {
    close_window_locked(now, "flush", pending_.front().cell);
  }
  if (pipelined()) wait_pipeline_drained_locked();
}

void PlacementService::stop() {
  {
    util::MutexLock lk(mu_);
    stopping_ = true;
    dispatch_cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    util::MutexLock lk(mu_);
    const double now = options_.clock == ClockMode::kVirtual
                           ? virtual_now_
                           : wall_now_locked();
    while (!pending_.empty()) {
      close_window_locked(now, "flush", pending_.front().cell);
    }
    if (pipelined()) {
      // Every closed window must commit before the workers may exit, and
      // before the accepted-vs-decided ledger below can balance.
      wait_pipeline_drained_locked();
      eval_stop_ = true;
      eval_cv_.notify_all();
    }
  }
  for (std::thread& t : eval_workers_) {
    if (t.joinable()) t.join();
  }
  eval_workers_.clear();
  {
    util::MutexLock lk(mu_);
    VCOPT_VALIDATE(check::validate_exact_cover(accepted_seqs_, decided_seqs_,
                                               "service accepted-vs-decided"));
  }
  // Barrier on the shared worker pool: any data-parallel scan our final
  // windows fanned out must retire before stop() returns (the pool reopens
  // immediately — other subsystems keep their parallelism).
  if (!util::ThreadPool::global().in_worker()) {
    util::ThreadPool::global().drain();
    util::ThreadPool::global().undrain();
  }
}

void PlacementService::release(cluster::LeaseId lease) {
  util::MutexLock lk(mu_);
  const double now =
      options_.clock == ClockMode::kVirtual ? virtual_now_ : wall_now_locked();
  if (pipelined()) {
    // A release is a capacity mutation: it takes a commit ticket at its
    // position in the call order and applies only at its turn, so the cloud
    // (and the journal's window/release record order) evolves exactly as
    // under serial inline dispatch.
    const std::uint64_t ticket = next_ticket_++;
    while (current_ticket_ != ticket) commit_cv_.wait(mu_);
    if (journal_) journal_->release(lease, now);
    cloud_.release(lease);
    ++epoch_;
    publish_snapshot_locked(now);
    if (sampler_) sampler_->maybe_sample(now);
    maybe_rebalance_locked(now);
    ++current_ticket_;
    commit_cv_.notify_all();
    return;
  }
  if (journal_) journal_->release(lease, now);
  cloud_.release(lease);
  if (sampler_) sampler_->maybe_sample(now);
  maybe_rebalance_locked(now);
}

std::vector<Outcome> PlacementService::take_outcomes() {
  util::MutexLock lk(mu_);
  std::vector<Outcome> out;
  out.reserve(decided_.size());
  for (auto& [seq, outcome] : decided_) out.push_back(std::move(outcome));
  decided_.clear();
  return out;
}

double PlacementService::now() const {
  util::MutexLock lk(mu_);
  return options_.clock == ClockMode::kVirtual ? virtual_now_
                                               : wall_now_locked();
}

std::size_t PlacementService::queue_depth() const {
  util::MutexLock lk(mu_);
  return pending_.size();
}

ServiceStats PlacementService::stats() const {
  util::MutexLock lk(mu_);
  return stats_;
}

double PlacementService::oldest_pending_locked() const {
  VCOPT_DCHECK(!pending_.empty());
  // pending_ stays in admission order (window picks compact it in place), so
  // the front entry is always the oldest.
  return pending_.front().submit_time;
}

void PlacementService::run_windows_until_locked(double t) {
  while (!pending_.empty()) {
    const double due = oldest_pending_locked() + options_.max_wait;
    if (due > t) break;
    // Close at the exact expiry instant, so journal timestamps (and deadline
    // sheds) are independent of how callers chunk their advance_to() calls.
    // Cell mode: the expiring (oldest) entry's cell is the window that
    // closes; other cells' entries keep waiting for their own due times.
    virtual_now_ = std::max(virtual_now_, due);
    close_window_locked(virtual_now_, "wait", pending_.front().cell);
  }
}

std::size_t PlacementService::cell_depth_locked(std::size_t cell) const {
  std::size_t n = 0;
  for (const PendingEntry& e : pending_) {
    if (e.cell == cell) ++n;
  }
  return n;
}

std::optional<std::size_t> PlacementService::full_cell_locked() const {
  // Count per cell in admission order and report the first cell to reach
  // max_batch, so the wall dispatcher's size trigger is deterministic given
  // the queue contents.  Flat mode: every entry carries kNoCell, so this
  // reduces to the legacy pending_.size() >= max_batch check.
  std::map<std::size_t, std::size_t> depth;
  for (const PendingEntry& e : pending_) {
    if (++depth[e.cell] >= options_.max_batch) return e.cell;
  }
  return std::nullopt;
}

std::optional<detail::CellPlanContext> PlacementService::make_cell_ctx(
    std::size_t cell) const {
  if (!directory_) return std::nullopt;
  detail::CellPlanContext ctx;
  ctx.partition = &directory_->partition();
  ctx.capacity_col_sums = &cell_cap_sums_;
  ctx.cell = cell;
  return ctx;
}

void PlacementService::close_window_locked(double close_time,
                                           const char* reason,
                                           std::size_t cell) {
  auto& m = ServiceMetrics::get();
  // Stage metrics only (service/stage/batch|solve|commit).
  const auto batch_start = std::chrono::steady_clock::now();  // NOLINT(vcopt-wall-clock)
  // Deadline sheds come out of the whole pending set — every cell's — not
  // just this window: an expired entry must never linger to be "granted" by
  // a later window.
  std::vector<PendingEntry> shed;
  std::vector<PendingEntry> live;
  live.reserve(pending_.size());
  for (PendingEntry& e : pending_) {
    if (e.options.deadline <= close_time) {
      shed.push_back(std::move(e));
    } else {
      live.push_back(std::move(e));
    }
  }
  // Only entries routed to this window's cell are candidates (flat mode:
  // every entry carries kNoCell, so the filter keeps the whole queue).
  std::vector<std::size_t> eligible;
  std::vector<PendingEntry> candidates;
  eligible.reserve(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i].cell == cell) {
      eligible.push_back(i);
      candidates.push_back(live[i]);
    }
  }
  const std::vector<std::size_t> picked =
      detail::pick_window(candidates, options_.discipline, options_.max_batch);
  std::vector<bool> taken(live.size(), false);
  std::vector<PendingEntry> members;
  members.reserve(picked.size());
  for (std::size_t k : picked) {
    members.push_back(live[eligible[k]]);
    taken[eligible[k]] = true;
  }
  pending_.clear();
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (!taken[i]) pending_.push_back(std::move(live[i]));
  }

  const std::uint64_t window_id = next_window_++;

  if (pipelined()) {
    // Hand the window to the evaluation pipeline.  The journal record is
    // written at the commit turn (still write-ahead of its grants), so the
    // window/release record order stays the serial ticket order.
    detail::EvalTask task;
    task.window_id = window_id;
    task.ticket = next_ticket_++;
    task.close_time = close_time;
    task.reason = reason;
    task.cell = cell;
    task.shed = std::move(shed);
    task.members = std::move(members);
    ++inflight_windows_;
    eval_queue_.push_back(std::move(task));
    m.queue_depth.set(static_cast<double>(pending_.size()));
    m.stage_batch.observe(seconds_since(batch_start));
    eval_cv_.notify_one();
    return;
  }

  if (journal_) {
    std::vector<std::uint64_t> member_seqs, shed_seqs;
    member_seqs.reserve(members.size());
    shed_seqs.reserve(shed.size());
    for (const PendingEntry& e : members) member_seqs.push_back(e.seq);
    for (const PendingEntry& e : shed) shed_seqs.push_back(e.seq);
    journal_->window(window_id, close_time, reason, member_seqs, shed_seqs,
                     cell);
  }
  m.stage_batch.observe(seconds_since(batch_start));

  const auto solve_start = std::chrono::steady_clock::now();  // NOLINT(vcopt-wall-clock)
  const std::optional<detail::CellPlanContext> ctx = make_cell_ctx(cell);
  std::vector<Outcome> outcomes = detail::decide_window(
      prov_, cloud_, shed, members, window_id, close_time, options_,
      ctx ? &*ctx : nullptr);
  m.stage_solve.observe(seconds_since(solve_start));

  const auto commit_start = std::chrono::steady_clock::now();  // NOLINT(vcopt-wall-clock)
  publish_outcomes_locked(shed.size(), members.size(), close_time,
                          std::move(outcomes));
  maybe_rebalance_locked(close_time);
  m.stage_commit.observe(seconds_since(commit_start));
}

void PlacementService::publish_outcomes_locked(std::size_t shed_count,
                                               std::size_t member_count,
                                               double sample_time,
                                               std::vector<Outcome> outcomes) {
  auto& m = ServiceMetrics::get();
  ++stats_.windows;
  stats_.deadline_missed += shed_count;
  m.windows.add();
  m.deadline_miss.add(shed_count);
  m.batch_size.observe(static_cast<double>(member_count));
  for (Outcome& o : outcomes) {
    const double latency = o.decide_time - o.submit_time;
    m.latency.observe(latency);
    m.stage_queue.observe(latency);
    if (options_.slo.enabled) {
      slo_.record_value("service/latency", o.decide_time, latency);
      if (has_lease(o.kind) && o.granted_vms > 0) {
        slo_.record_value("service/dc_per_vm", o.decide_time,
                          o.distance / static_cast<double>(o.granted_vms));
      }
    }
    decided_seqs_.push_back(o.seq);
    ++stats_.decided;
    m.decided.add();
    decided_.emplace(o.seq, std::move(o));
  }
  m.queue_depth.set(static_cast<double>(pending_.size()));
  if (sampler_) sampler_->maybe_sample(sample_time);
  decided_cv_.notify_all();
}

void PlacementService::maybe_rebalance_locked(double t) {
  const ServiceRebalanceOptions& ro = options_.rebalance;
  if (!ro.enabled || options_.recorder == nullptr) return;
  if (t < last_rebalance_ + ro.period) return;
  last_rebalance_ = t;

  rebalance::RebalancePolicy rp;
  rp.max_moves_per_round = ro.max_moves;
  rp.drift_ratio = ro.drift_ratio;
  rp.min_net_gain = ro.min_net_gain;
  rp.lease_cooldown = ro.lease_cooldown;
  rp.cost.cost_per_gb = ro.cost_per_gb;
  rp.cost.shuffle_cost_factor = ro.shuffle_cost_factor;

  std::vector<rebalance::DriftCandidate> candidates =
      rebalance::collect_drift(cloud_, *options_.recorder, rp,
                               /*slo_hot=*/false);
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [&](const rebalance::DriftCandidate& c) {
                                    const auto it =
                                        rebalance_cooldown_.find(c.lease);
                                    return it != rebalance_cooldown_.end() &&
                                           it->second > t;
                                  }),
                   candidates.end());
  if (candidates.empty()) return;
  const std::vector<rebalance::PlannedMove> moves =
      rebalance::plan_moves(cloud_, candidates, rp, ro.max_moves);
  if (moves.empty()) return;

  // Write-ahead: the journal records the exact moves before they execute,
  // so replay re-applies the identical capacity evolution.
  if (journal_) {
    std::vector<RebalanceMove> journal_moves;
    journal_moves.reserve(moves.size());
    for (const rebalance::PlannedMove& mv : moves) {
      journal_moves.push_back(RebalanceMove{mv.lease, mv.move.from_node,
                                            mv.move.to_node, mv.move.type});
    }
    journal_->rebalance(t, journal_moves);
  }

  auto& reg = obs::MetricsRegistry::global();
  std::size_t committed = 0;
  for (const rebalance::PlannedMove& mv : moves) {
    reg.counter("rebalance/migrations_attempted").add(1);
    // In-lock apply: the plan was computed against the cloud this lock
    // protects, so each move lands on exactly the capacity it planned for
    // (later moves may consume slots earlier ones freed — hence commit
    // immediately, in plan order).
    const std::uint64_t ticket = cloud_.begin_migration(
        mv.lease, mv.move.from_node, mv.move.to_node, mv.move.type);
    if (ticket == 0 || !cloud_.commit_migration(ticket)) {
      VCOPT_DCHECK(false) << "planned migration of lease " << mv.lease
                          << " refused under the service lock";
      reg.counter("rebalance/migrations_rolled_back").add(1);
      continue;
    }
    ++committed;
    reg.counter("rebalance/migrations_committed").add(1);
    reg.histogram("rebalance/migration_gain",
                  obs::MetricsRegistry::exponential_buckets(0.01, 2.0, 12))
        .observe(mv.gain);
    rebalance_cooldown_[mv.lease] = t + ro.lease_cooldown;
  }
  if (committed > 0) {
    ++stats_.rebalance_passes;
    stats_.rebalance_migrations += committed;
    if (pipelined()) {
      // Capacity moved: later plans must read post-migration capacity.
      ++epoch_;
      publish_snapshot_locked(t);
    }
  }
  if (sampler_) sampler_->maybe_sample(t);
}

void PlacementService::publish_snapshot_locked(double build_time) {
  snap_.store(snapshot_arena_.build(cloud_, epoch_, build_time),
              std::memory_order_release);
  ++stats_.snapshot_builds;
  ServiceMetrics::get().snapshot_builds.add();
}

void PlacementService::commit_task_locked(const detail::EvalTask& task,
                                          detail::WindowPlan& plan) {
  auto& m = ServiceMetrics::get();
  const auto commit_start = std::chrono::steady_clock::now();  // NOLINT(vcopt-wall-clock)
  if (journal_) {
    std::vector<std::uint64_t> member_seqs, shed_seqs;
    member_seqs.reserve(task.members.size());
    shed_seqs.reserve(task.shed.size());
    for (const PendingEntry& e : task.members) member_seqs.push_back(e.seq);
    for (const PendingEntry& e : task.shed) shed_seqs.push_back(e.seq);
    journal_->window(task.window_id, task.close_time, task.reason, member_seqs,
                     shed_seqs, task.cell);
  }
  detail::commit_window(cloud_, plan);
  if (!plan.grants.empty()) {
    // Capacity changed: advance the epoch and republish, so later plans read
    // post-commit capacity (a no-grant window leaves both untouched — the
    // published snapshot stays valid and conflict-free).
    ++epoch_;
    publish_snapshot_locked(task.close_time);
  }
  publish_outcomes_locked(task.shed.size(), task.members.size(),
                          task.close_time, std::move(plan.outcomes));
  // Same logical instant as the serial path's post-window rebalance: this
  // thread still holds the commit ticket, so the pass (and its journal
  // record) lands between this window and the next capacity event.
  maybe_rebalance_locked(task.close_time);
  ++current_ticket_;
  VCOPT_DCHECK(inflight_windows_ > 0);
  --inflight_windows_;
  commit_cv_.notify_all();
  m.stage_commit.observe(seconds_since(commit_start));
}

void PlacementService::wait_pipeline_drained_locked() {
  while (inflight_windows_ > 0) commit_cv_.wait(mu_);
}

void PlacementService::eval_loop() {
  auto& m = ServiceMetrics::get();
  for (;;) {
    detail::EvalTask task;
    {
      util::MutexLock lk(mu_);
      while (!eval_stop_ && eval_queue_.empty()) eval_cv_.wait(mu_);
      if (eval_queue_.empty()) return;  // eval_stop_ and fully drained
      task = std::move(eval_queue_.front());
      eval_queue_.pop_front();
      ++stats_.snapshot_reuses;
    }
    // Lock-free read of the published snapshot: admission/journaling proceed
    // under mu_ while this thread plans.
    std::shared_ptr<const cluster::CloudSnapshot> snap =
        snap_.load(std::memory_order_acquire);
    m.snapshot_reuses.add();
    m.snapshot_age.set(task.close_time - snap->build_time);
    // Ctor-set immutable cell state — safe to read without mu_.
    const std::optional<detail::CellPlanContext> ctx = make_cell_ctx(task.cell);
    const detail::CellPlanContext* ctx_ptr = ctx ? &*ctx : nullptr;
    const auto solve_start = std::chrono::steady_clock::now();  // NOLINT(vcopt-wall-clock)
    detail::WindowPlan plan =
        detail::plan_window(*snap, task.shed, task.members, task.window_id,
                            task.close_time, options_, ctx_ptr);
    m.stage_solve.observe(seconds_since(solve_start));
    for (;;) {
      bool committed = false;
      {
        util::MutexLock lk(mu_);
        while (current_ticket_ != task.ticket) commit_cv_.wait(mu_);
        if (plan.base_epoch == epoch_) {
          commit_task_locked(task, plan);
          committed = true;
        } else {
          // Stale plan: capacity moved since the snapshot this plan read.
          // Publish a fresh snapshot for the current epoch and re-plan
          // against it outside the lock.  Only the ticket holder and
          // ticketed releases mutate capacity, so the epoch cannot move
          // again before this task's next commit attempt.
          ++stats_.snapshot_conflicts;
          m.snapshot_conflicts.add();
          publish_snapshot_locked(task.close_time);
          snap = snap_.load(std::memory_order_acquire);
        }
      }
      if (committed) break;
      plan = detail::plan_window(*snap, task.shed, task.members,
                                 task.window_id, task.close_time, options_,
                                 ctx_ptr);
    }
  }
}

void PlacementService::dispatcher_loop() {
  util::MutexLock lk(mu_);
  while (!stopping_) {
    if (pending_.empty()) {
      while (!stopping_ && pending_.empty()) dispatch_cv_.wait(mu_);
      continue;
    }
    if (const std::optional<std::size_t> full = full_cell_locked()) {
      close_window_locked(wall_now_locked(), "size", *full);
      continue;
    }
    const double due = oldest_pending_locked() + options_.max_wait;
    const double now = wall_now_locked();
    if (now >= due) {
      close_window_locked(now, "wait", pending_.front().cell);
      continue;
    }
    const auto wake =
        wall_epoch_ +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(due));
    dispatch_cv_.wait_until(mu_, wake);
  }
}

}  // namespace vcopt::service
