#include "fault/fault_sim.h"

#include <algorithm>
#include <functional>
#include <map>
#include <stdexcept>

#include "check/check.h"
#include "cluster/sampler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace vcopt::fault {

FaultSimResult run_fault_sim(cluster::Cloud& cloud,
                             std::unique_ptr<placement::PlacementPolicy> policy,
                             const std::vector<cluster::TimedRequest>& trace,
                             const FaultProfile& profile,
                             const FaultSimOptions& options) {
  VCOPT_TRACE_SPAN("fault/fault_sim");
  placement::Provisioner prov(cloud, std::move(policy), options.discipline);
  sim::EventQueue queue;
  RecoveryManager recovery(cloud, queue, options.repair, profile.seed);

  std::map<std::uint64_t, double> hold_time;
  std::map<std::uint64_t, double> arrival;
  std::map<cluster::LeaseId, std::size_t> lease_grant;
  std::vector<sim::GrantRecord> grants;
  FaultSimResult out;

  for (const cluster::TimedRequest& tr : trace) {
    if (tr.arrival_time < 0 || tr.hold_time < 0) {
      throw std::invalid_argument("run_fault_sim: negative time in trace");
    }
    if (!hold_time.emplace(tr.request.id(), tr.hold_time).second) {
      throw std::invalid_argument("run_fault_sim: duplicate request id");
    }
    arrival[tr.request.id()] = tr.arrival_time;
  }

  // Resolve horizon 0 to the trace's natural window so fault instants land
  // while clusters are actually running.
  FaultProfile effective = profile;
  if (effective.horizon <= 0) {
    double end = 0;
    for (const cluster::TimedRequest& tr : trace) {
      end = std::max(end, tr.arrival_time + tr.hold_time);
    }
    effective.horizon = end > 0 ? end : 1.0;
  }
  FaultInjector injector(effective, cloud.topology());
  out.schedule = injector.schedule();

  // Utilisation integral.  Repairs shrink and grow leases between grant and
  // release, so the allocated-VM count is re-read from the inventory after
  // every mutation instead of being tracked by hand.
  double vm_seconds = 0;
  double last_sample = 0;
  int allocated_vms = 0;
  std::vector<sim::TimelineSample> timeline;
  auto sample = [&] {
    VCOPT_DCHECK(queue.now() >= last_sample)
        << " utilisation sample went backwards: " << last_sample << " -> "
        << queue.now();
    vm_seconds += allocated_vms * (queue.now() - last_sample);
    last_sample = queue.now();
  };
  auto resync = [&] { allocated_vms = cloud.inventory().allocated().total(); };
  std::unique_ptr<cluster::ClusterSampler> sampler;
  if (options.recorder != nullptr) {
    cluster::ClusterSamplerOptions so;
    so.period = options.sample_period;
    sampler = std::make_unique<cluster::ClusterSampler>(cloud, *options.recorder,
                                                        so);
  }
  if (options.slo != nullptr &&
      !options.slo->declared("fault/repair_success")) {
    obs::SloSpec spec;
    spec.name = "fault/repair_success";
    spec.description = "lease repairs ending fully repaired";
    spec.objective = 0.25;
    options.slo->declare(spec);
  }
  auto record_timeline = [&] {
    timeline.push_back(sim::TimelineSample{queue.now(), allocated_vms,
                                           prov.queue_length(),
                                           cloud.lease_count()});
    if (sampler) sampler->maybe_sample(queue.now());
  };

  std::function<void(cluster::LeaseId)> handle_release;

  auto record_grant = [&](const placement::Grant& g) {
    sample();
    sim::GrantRecord rec;
    rec.request_id = g.request_id;
    rec.arrival = arrival.at(g.request_id);
    rec.granted = queue.now();
    rec.distance = g.placement.distance;
    rec.central = g.placement.central;
    rec.vms = g.placement.allocation.total_vms();
    resync();
    lease_grant[g.lease] = grants.size();
    grants.push_back(rec);
    recovery.track(g);
    record_timeline();
    const cluster::LeaseId lease = g.lease;
    queue.schedule_in(hold_time.at(g.request_id),
                      [&, lease] { handle_release(lease); });
  };

  handle_release = [&](cluster::LeaseId lease) {
    if (!cloud.has_lease(lease)) return;  // repair abandoned it earlier
    sample();
    prov.set_now(queue.now());  // queue_wait_time spans enqueue -> this drain
    grants[lease_grant.at(lease)].released = queue.now();
    recovery.untrack(lease);
    std::vector<placement::Grant> drained = prov.release(lease);
    resync();
    record_timeline();
    for (const placement::Grant& g : drained) record_grant(g);
  };

  // An abandoned repair releases through the provisioner so the wait queue
  // drains exactly as a normal release would.
  recovery.set_release_hook([&](cluster::LeaseId lease) {
    prov.set_now(queue.now());
    for (const placement::Grant& g : prov.release(lease)) record_grant(g);
  });
  recovery.set_repair_hook([&](const RepairRecord& r) {
    sample();
    resync();
    record_timeline();
    if (options.slo != nullptr) {
      options.slo->record_event(
          "fault/repair_success", r.completed_at,
          r.status == placement::PlacementStatus::kRepaired);
    }
    if (r.status == placement::PlacementStatus::kAbandoned) {
      const auto it = lease_grant.find(r.lease);
      if (it != lease_grant.end()) grants[it->second].released = r.completed_at;
    }
  });

  injector.arm(queue, [&](const FaultEvent& e) {
    sample();
    switch (e.kind) {
      case FaultKind::kNodeCrash:
        ++out.node_crashes;
        recovery.on_node_failed(e.subject);
        break;
      case FaultKind::kNodeRecover:
        if (cloud.is_failed(e.subject)) {
          ++out.node_recoveries;
          recovery.on_node_recovered(e.subject);
        }
        break;
      case FaultKind::kRackOutage:
        ++out.rack_outages;
        for (const std::size_t n : cloud.topology().nodes_in_rack(e.subject)) {
          recovery.on_node_failed(n);
        }
        break;
      case FaultKind::kRackRecover:
        for (const std::size_t n : cloud.topology().nodes_in_rack(e.subject)) {
          if (cloud.is_failed(n)) {
            ++out.node_recoveries;
            recovery.on_node_recovered(n);
          }
        }
        break;
      case FaultKind::kDegrade:
        ++out.transients;
        if (!cloud.is_drained(e.subject)) cloud.drain_node(e.subject);
        break;
      case FaultKind::kRestore:
        if (cloud.is_drained(e.subject)) cloud.undrain_node(e.subject);
        break;
    }
    resync();
    record_timeline();
  });

  for (const cluster::TimedRequest& tr : trace) {
    queue.schedule(tr.arrival_time, [&, tr] {
      prov.set_now(queue.now());
      auto grant = prov.request(tr.request);
      if (grant) record_grant(*grant);
      else record_timeline();
    });
  }

  if (options.attach) options.attach(queue, effective.horizon);

  queue.run();
  sample();

  out.grants = std::move(grants);
  out.rejected = prov.rejected_count();
  out.unserved = prov.queue_length();
  out.makespan = queue.now();
  double wait_sum = 0;
  for (const sim::GrantRecord& g : out.grants) {
    out.total_distance += g.distance;
    wait_sum += g.wait();
  }
  out.mean_wait = out.grants.empty()
                      ? 0
                      : wait_sum / static_cast<double>(out.grants.size());
  const int capacity = cloud.inventory().max_capacity().total();
  out.mean_utilization =
      (out.makespan > 0 && capacity > 0)
          ? vm_seconds / (out.makespan * static_cast<double>(capacity))
          : 0;
  out.timeline = std::move(timeline);

  out.repairs = recovery.records();
  out.leases_hit = static_cast<int>(out.repairs.size());
  for (const RepairRecord& r : out.repairs) {
    out.vms_lost += r.vms_lost;
    out.vms_replaced += r.vms_replaced;
    switch (r.status) {
      case placement::PlacementStatus::kRepaired: ++out.repaired; break;
      case placement::PlacementStatus::kPartial: ++out.partial; break;
      case placement::PlacementStatus::kDegraded: ++out.degraded; break;
      default: ++out.abandoned; break;
    }
    if (r.status != placement::PlacementStatus::kAbandoned) {
      out.repair_distance_penalty += r.distance_after - r.distance_before;
    }
  }
  // Every injected failure must end in an explicit terminal status: nothing
  // may still be "pending repair" once the event queue drains.
  VCOPT_INVARIANT(recovery.pending_count() == 0)
      << " fault sim drained with " << recovery.pending_count()
      << " repairs still pending";
  return out;
}

}  // namespace vcopt::fault
