#include "fault/profile.h"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace vcopt::fault {

namespace {

FaultProfile preset(const std::string& name) {
  FaultProfile p;
  if (name == "none") return p;
  if (name == "light") {
    p.node_crashes = 1;
    p.transients = 1;
    return p;
  }
  if (name == "heavy") {
    p.node_crashes = 4;
    p.rack_outages = 1;
    p.transients = 2;
    p.mean_downtime = 30;
    return p;
  }
  throw std::invalid_argument("FaultProfile: unknown preset '" + name +
                              "' (expected none|light|heavy or key=value)");
}

double parse_number(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double out = 0;
  try {
    out = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || value.empty()) {
    throw std::invalid_argument("FaultProfile: bad number '" + value +
                                "' for key '" + key + "'");
  }
  return out;
}

int parse_count(const std::string& key, const std::string& value) {
  const double d = parse_number(key, value);
  const int i = static_cast<int>(d);
  if (d != static_cast<double>(i) || i < 0) {
    throw std::invalid_argument("FaultProfile: key '" + key +
                                "' wants a non-negative integer, got '" +
                                value + "'");
  }
  return i;
}

}  // namespace

void FaultProfile::validate() const {
  if (node_crashes < 0 || rack_outages < 0 || transients < 0) {
    throw std::invalid_argument("FaultProfile: negative event count");
  }
  if (horizon < 0) {
    throw std::invalid_argument("FaultProfile: negative horizon");
  }
  if (total_events() > 0 && mean_downtime <= 0) {
    throw std::invalid_argument("FaultProfile: mean_downtime must be > 0");
  }
  if (transients > 0 && transient_duration <= 0) {
    throw std::invalid_argument("FaultProfile: transient_duration must be > 0");
  }
  if (degrade_factor <= 0 || degrade_factor > 1) {
    throw std::invalid_argument("FaultProfile: degrade_factor outside (0, 1]");
  }
}

FaultProfile FaultProfile::parse(const std::string& spec) {
  std::vector<std::string> tokens;
  std::string tok;
  std::istringstream in(spec);
  while (std::getline(in, tok, ',')) {
    if (!tok.empty()) tokens.push_back(tok);
  }
  FaultProfile p;
  std::size_t first = 0;
  if (!tokens.empty() && tokens[0].find('=') == std::string::npos) {
    p = preset(tokens[0]);
    first = 1;
  }
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("FaultProfile: expected key=value, got '" +
                                  t + "'");
    }
    const std::string key = t.substr(0, eq);
    const std::string value = t.substr(eq + 1);
    if (key == "seed") {
      p.seed = static_cast<std::uint64_t>(parse_count(key, value));
    } else if (key == "horizon") {
      p.horizon = parse_number(key, value);
    } else if (key == "crashes") {
      p.node_crashes = parse_count(key, value);
    } else if (key == "racks") {
      p.rack_outages = parse_count(key, value);
    } else if (key == "transients") {
      p.transients = parse_count(key, value);
    } else if (key == "mttr") {
      p.mean_downtime = parse_number(key, value);
    } else if (key == "transient-duration") {
      p.transient_duration = parse_number(key, value);
    } else if (key == "degrade") {
      p.degrade_factor = parse_number(key, value);
    } else {
      throw std::invalid_argument("FaultProfile: unknown key '" + key + "'");
    }
  }
  p.validate();
  return p;
}

std::string FaultProfile::describe() const {
  std::ostringstream os;
  os << "crashes=" << node_crashes << " racks=" << rack_outages
     << " transients=" << transients << " seed=" << seed
     << " horizon=" << horizon << " mttr=" << mean_downtime;
  return os.str();
}

}  // namespace vcopt::fault
