#include "fault/injector.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/rng.h"

namespace vcopt::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kNodeRecover: return "node-recover";
    case FaultKind::kRackOutage: return "rack-outage";
    case FaultKind::kRackRecover: return "rack-recover";
    case FaultKind::kDegrade: return "degrade";
    case FaultKind::kRestore: return "restore";
  }
  return "?";
}

std::vector<FaultEvent> build_schedule(const FaultProfile& profile,
                                       const cluster::Topology& topology) {
  profile.validate();
  if (profile.total_events() == 0) return {};
  if (profile.horizon <= 0) {
    throw std::invalid_argument(
        "build_schedule: profile has events but horizon <= 0 (callers must "
        "resolve horizon=0 to a concrete window first)");
  }
  util::Rng rng(profile.seed);
  std::vector<FaultEvent> events;
  std::uint64_t seq = 0;
  auto emit = [&](double time, FaultKind kind, std::size_t subject) {
    events.push_back(FaultEvent{time, kind, subject, seq++});
  };
  const auto n = static_cast<std::int64_t>(topology.node_count());
  const auto racks = static_cast<std::int64_t>(topology.rack_count());
  for (int c = 0; c < profile.node_crashes; ++c) {
    const double t = rng.uniform(0, profile.horizon);
    const auto node =
        static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const double down = rng.exponential(profile.mean_downtime);
    emit(t, FaultKind::kNodeCrash, node);
    emit(t + down, FaultKind::kNodeRecover, node);
  }
  for (int r = 0; r < profile.rack_outages; ++r) {
    const double t = rng.uniform(0, profile.horizon);
    const auto rack =
        static_cast<std::size_t>(rng.uniform_int(0, racks - 1));
    const double down = rng.exponential(profile.mean_downtime);
    emit(t, FaultKind::kRackOutage, rack);
    emit(t + down, FaultKind::kRackRecover, rack);
  }
  for (int d = 0; d < profile.transients; ++d) {
    const double t = rng.uniform(0, profile.horizon);
    const auto node =
        static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    emit(t, FaultKind::kDegrade, node);
    emit(t + profile.transient_duration, FaultKind::kRestore, node);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.sequence < b.sequence;
                   });
  return events;
}

FaultInjector::FaultInjector(FaultProfile profile,
                             const cluster::Topology& topology)
    : profile_(profile), schedule_(build_schedule(profile, topology)) {}

void FaultInjector::arm(sim::EventQueue& queue,
                        std::function<void(const FaultEvent&)> sink) const {
  auto& reg = obs::MetricsRegistry::global();
  for (const FaultEvent& e : schedule_) {
    queue.schedule(e.time, [e, sink, &reg] {
      if (reg.enabled()) reg.counter("fault/events_injected").add();
      sink(e);
    });
  }
}

std::string FaultInjector::describe() const {
  std::ostringstream os;
  os << profile_.describe() << ": " << schedule_.size()
     << " scheduled events";
  return os.str();
}

}  // namespace vcopt::fault
