#include "fault/recovery.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <utility>

#include "check/check.h"
#include "check/validators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "placement/online_heuristic.h"
#include "util/stats.h"

namespace vcopt::fault {

namespace {

struct RecoveryMetrics {
  obs::Counter& node_failures;
  obs::Counter& node_recoveries;
  obs::Counter& leases_hit;
  obs::Counter& vms_lost;
  obs::Counter& vms_replaced;
  obs::Counter& repaired;
  obs::Counter& partial;
  obs::Counter& degraded;
  obs::Counter& abandoned;
  obs::Counter& retries;
  obs::Counter& restricted_hits;
  obs::Counter& full_scans;

  static RecoveryMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static RecoveryMetrics m{
        reg.counter("recovery/node_failures"),
        reg.counter("recovery/node_recoveries"),
        reg.counter("recovery/leases_hit"),
        reg.counter("recovery/vms_lost"),
        reg.counter("recovery/vms_replaced"),
        reg.counter("recovery/repaired"),
        reg.counter("recovery/partial"),
        reg.counter("recovery/degraded"),
        reg.counter("recovery/abandoned"),
        reg.counter("recovery/retries"),
        reg.counter("recovery/restricted_hits"),
        reg.counter("recovery/full_scans"),
    };
    return m;
  }
};

/// DC(C) of the union (survivors + fill): the metric the repair scan
/// minimises, so replacements are judged by the distance of the WHOLE
/// repaired cluster, not of the replacement VMs in isolation.
double merged_distance(const util::IntMatrix& original,
                       const util::IntMatrix& lost,
                       const cluster::Allocation& fill,
                       const util::DoubleMatrix& dist) {
  cluster::Allocation merged(original.rows(), original.cols());
  for (std::size_t i = 0; i < original.rows(); ++i) {
    for (std::size_t j = 0; j < original.cols(); ++j) {
      const int v = original(i, j) - lost(i, j) + fill.at(i, j);
      if (v != 0) merged.add(i, j, v);
    }
  }
  return merged.best_central(dist).distance;
}

}  // namespace

double backoff_delay(const RepairPolicy& policy, int attempt, double u) {
  const double base = util::capped_exponential_backoff(
      policy.backoff_initial, policy.backoff_factor, attempt,
      policy.backoff_max);
  const double jitter = 1.0 + policy.backoff_jitter * (2.0 * u - 1.0);
  return std::clamp(base * jitter, 0.0, policy.backoff_max);
}

RecoveryManager::RecoveryManager(cluster::Cloud& cloud, sim::EventQueue& queue,
                                 RepairPolicy policy, std::uint64_t seed)
    : cloud_(cloud), queue_(queue), policy_(policy), rng_(seed) {
  release_hook_ = [this](cluster::LeaseId id) { cloud_.release(id); };
}

void RecoveryManager::track(const placement::Grant& grant) {
  tracked_[grant.lease] = Tracked{grant.request_id, grant.placement.central, 0,
                                  grant.placement.distance};
}

void RecoveryManager::untrack(cluster::LeaseId lease) {
  tracked_.erase(lease);
  auto it = pending_.find(lease);
  if (it != pending_.end()) {
    // The lease ended (normal release) with a repair still in flight: close
    // the book explicitly rather than leaving a dangling retry.
    finalize(it->second, placement::PlacementStatus::kAbandoned, 0, 0, false);
  }
}

void RecoveryManager::on_node_failed(std::size_t node) {
  VCOPT_TRACE_SPAN("recovery/on_node_failed");
  if (cloud_.is_failed(node)) return;
  auto& m = RecoveryMetrics::get();
  m.node_failures.add();
  const std::vector<cluster::LeaseId> hit = cloud_.fail_node(node);
  for (const cluster::LeaseId id : hit) {
    const cluster::Allocation slice = cloud_.lease_part_on_node(id, node);
    if (slice.empty_allocation()) continue;
    auto it = pending_.find(id);
    const bool fresh = it == pending_.end();
    if (fresh) {
      Pending p;
      p.lease = id;
      p.failed_at = queue_.now();
      p.original = cloud_.lease_allocation(id).counts();
      p.lost = util::IntMatrix(p.original.rows(), p.original.cols());
      p.missing.assign(p.original.cols(), 0);
      p.failed_nodes.assign(p.original.rows(), false);
      p.rng = rng_.fork();
      const auto tracked = tracked_.find(id);
      if (tracked != tracked_.end()) {
        p.request_id = tracked->second.request_id;
        p.anchor = tracked->second.central;
        p.distance_before = tracked->second.distance;
      } else {
        const cluster::CentralNode c = cluster::Allocation(p.original)
                                           .best_central(
                                               cloud_.distance_matrix());
        p.anchor = c.node;
        p.distance_before = c.distance;
      }
      it = pending_.emplace(id, std::move(p)).first;
      m.leases_hit.add();
    }
    Pending& p = it->second;
    for (std::size_t i = 0; i < slice.node_count(); ++i) {
      for (std::size_t j = 0; j < slice.type_count(); ++j) {
        p.lost.at(i, j) += slice.at(i, j);
      }
    }
    for (std::size_t j = 0; j < slice.type_count(); ++j) {
      p.missing[j] += slice.vms_of_type(j);
    }
    p.failed_nodes[node] = true;
    m.vms_lost.add(static_cast<std::uint64_t>(slice.total_vms()));
    cloud_.shrink_lease(id, slice);
    if (fresh) {
      queue_.schedule_in(0, [this, id] { attempt_repair(id); });
    }
  }
}

void RecoveryManager::on_node_recovered(std::size_t node) {
  if (!cloud_.is_failed(node)) return;
  cloud_.recover_node(node);
  RecoveryMetrics::get().node_recoveries.add();
}

util::IntMatrix RecoveryManager::repair_remaining(const Pending& p) const {
  util::IntMatrix remaining = cloud_.remaining();
  for (std::size_t i = 0; i < remaining.rows(); ++i) {
    if (!p.failed_nodes[i]) continue;
    for (std::size_t j = 0; j < remaining.cols(); ++j) remaining(i, j) = 0;
  }
  return remaining;
}

std::optional<cluster::Allocation> RecoveryManager::place_missing(
    const Pending& p, bool& restricted) const {
  restricted = false;
  const cluster::Request missing(p.missing, p.request_id);
  const util::IntMatrix remaining = repair_remaining(p);
  const cluster::Topology& topo = cloud_.topology();
  const util::DoubleMatrix& dist = topo.distance_matrix();

  if (!policy_.affinity_preserving) {
    placement::OnlineHeuristic heuristic;
    auto placed = heuristic.place(missing, remaining, topo);
    if (!placed) return std::nullopt;
    return std::move(placed->allocation);
  }

  // Affinity-preserving scan: candidate centrals ordered by distance from
  // the cluster's original central node, so the first completions keep the
  // replacements in (or next to) the rack the cluster lives in.  Candidates
  // that are down or failure-tainted for this lease are skipped.
  std::vector<std::size_t> order(topo.node_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return dist(p.anchor, a) < dist(p.anchor, b);
                   });
  std::optional<cluster::Allocation> best;
  double best_distance = 0;
  std::size_t scanned = 0;
  for (const std::size_t x : order) {
    if (cloud_.is_failed(x) || p.failed_nodes[x]) continue;
    const bool in_window = scanned < policy_.restricted_candidates;
    ++scanned;
    // Once the restricted window produced a repair, stop at the window edge
    // instead of paying for the full scan.
    if (!in_window && best) break;
    auto fill = placement::OnlineHeuristic::fill_from_central(
        missing, remaining, topo, x);
    if (!fill) continue;
    const double d = merged_distance(p.original, p.lost, *fill, dist);
    if (!best || d < best_distance) {
      best = std::move(fill);
      best_distance = d;
      restricted = in_window;
    }
  }
  return best;
}

void RecoveryManager::finalize(Pending& p, placement::PlacementStatus status,
                               int vms_replaced, double distance_after,
                               bool restricted) {
  RepairRecord rec;
  rec.lease = p.lease;
  rec.request_id = p.request_id;
  rec.status = status;
  rec.attempts = p.attempts;
  rec.failed_at = p.failed_at;
  rec.completed_at = queue_.now();
  rec.vms_lost = std::accumulate(p.missing.begin(), p.missing.end(), 0);
  rec.vms_replaced = vms_replaced;
  rec.distance_before = p.distance_before;
  rec.distance_after = distance_after;
  rec.restricted_scan_used = restricted;
  records_.push_back(rec);
  pending_.erase(rec.lease);  // p is dead past this line
  if (repair_hook_) repair_hook_(records_.back());
}

void RecoveryManager::attempt_repair(cluster::LeaseId lease) {
  VCOPT_TRACE_SPAN("recovery/attempt_repair");
  auto it = pending_.find(lease);
  if (it == pending_.end()) return;  // released (untracked) before the retry
  Pending& p = it->second;
  auto& m = RecoveryMetrics::get();
  if (!cloud_.has_lease(lease)) {
    finalize(p, placement::PlacementStatus::kAbandoned, 0, 0, false);
    m.abandoned.add();
    return;
  }

  bool restricted = false;
  std::optional<cluster::Allocation> fill = place_missing(p, restricted);
  if (fill) {
    VCOPT_VALIDATE(check::validate_repair_conservation(
        p.original, p.lost, fill->counts(), p.failed_nodes,
        /*full_repair=*/true));
    cloud_.grow_lease(lease, *fill);
    const cluster::CentralNode c =
        cloud_.lease_allocation(lease).best_central(cloud_.distance_matrix());
    auto tracked = tracked_.find(lease);
    if (tracked != tracked_.end()) {
      tracked->second.central = c.node;
      tracked->second.distance = c.distance;
    }
    const int replaced = fill->total_vms();
    m.repaired.add();
    m.vms_replaced.add(static_cast<std::uint64_t>(replaced));
    if (restricted) m.restricted_hits.add(); else m.full_scans.add();
    finalize(p, placement::PlacementStatus::kRepaired, replaced, c.distance,
             restricted);
    return;
  }

  ++p.attempts;
  if (p.attempts < policy_.max_attempts) {
    // Exponential backoff with deterministic jitter from the per-lease
    // stream, clamped to policy_.backoff_max (see backoff_delay).
    const double delay = backoff_delay(policy_, p.attempts, p.rng.uniform01());
    m.retries.add();
    queue_.schedule_in(delay, [this, lease] { attempt_repair(lease); });
    return;
  }

  // Attempt budget exhausted: degrade explicitly.  Best-effort partial
  // refill first (nearest-first from the anchor), then keep the survivors,
  // and only release when nothing of the cluster is left.
  if (policy_.allow_partial) {
    const util::IntMatrix remaining = repair_remaining(p);
    const util::DoubleMatrix& dist = cloud_.distance_matrix();
    std::vector<std::size_t> order(remaining.rows());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return dist(p.anchor, a) < dist(p.anchor, b);
                     });
    cluster::Allocation partial(remaining.rows(), remaining.cols());
    for (std::size_t j = 0; j < remaining.cols(); ++j) {
      int want = p.missing[j];
      for (const std::size_t i : order) {
        if (want == 0) break;
        const int take = std::min(want, remaining(i, j));
        if (take > 0) {
          partial.add(i, j, take);
          want -= take;
        }
      }
    }
    if (partial.total_vms() > 0) {
      VCOPT_VALIDATE(check::validate_repair_conservation(
          p.original, p.lost, partial.counts(), p.failed_nodes,
          /*full_repair=*/false));
      cloud_.grow_lease(lease, partial);
      const cluster::CentralNode c = cloud_.lease_allocation(lease)
                                         .best_central(
                                             cloud_.distance_matrix());
      const int replaced = partial.total_vms();
      m.partial.add();
      m.vms_replaced.add(static_cast<std::uint64_t>(replaced));
      finalize(p, placement::PlacementStatus::kPartial, replaced, c.distance,
               false);
      return;
    }
  }
  if (cloud_.lease_allocation(lease).total_vms() > 0) {
    const cluster::CentralNode c =
        cloud_.lease_allocation(lease).best_central(cloud_.distance_matrix());
    m.degraded.add();
    finalize(p, placement::PlacementStatus::kDegraded, 0, c.distance, false);
    return;
  }
  m.abandoned.add();
  finalize(p, placement::PlacementStatus::kAbandoned, 0, 0, false);
  tracked_.erase(lease);
  release_hook_(lease);
}

std::string RecoveryManager::describe() const {
  int repaired = 0, partial = 0, degraded = 0, abandoned = 0;
  for (const RepairRecord& r : records_) {
    switch (r.status) {
      case placement::PlacementStatus::kRepaired: ++repaired; break;
      case placement::PlacementStatus::kPartial: ++partial; break;
      case placement::PlacementStatus::kDegraded: ++degraded; break;
      default: ++abandoned; break;
    }
  }
  std::ostringstream os;
  os << "recovery: " << records_.size() << " repairs (" << repaired
     << " full, " << partial << " partial, " << degraded << " degraded, "
     << abandoned << " abandoned), " << pending_.size() << " pending";
  return os.str();
}

}  // namespace vcopt::fault
