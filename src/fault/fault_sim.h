// Fault-injection queueing simulation: the churn simulation of
// sim::run_cluster_sim with a FaultInjector and a RecoveryManager wired into
// the same event queue.  Node crashes revoke capacity and lose VMs (repaired
// by the RecoveryManager), rack outages crash every node in the rack,
// transient degradations mask a node's spare capacity (drain semantics: the
// VMs it hosts survive).  The run is a pure function of (cloud, policy,
// trace, profile, options): replaying the same inputs reproduces the same
// grants, repairs and timeline byte-for-byte.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/cloud.h"
#include "fault/injector.h"
#include "fault/profile.h"
#include "fault/recovery.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "placement/provisioner.h"
#include "sim/cluster_sim.h"

namespace vcopt::fault {

struct FaultSimOptions {
  placement::QueueDiscipline discipline = placement::QueueDiscipline::kFifo;
  RepairPolicy repair;
  /// Optional time-series recorder (see sim::ClusterSimOptions::recorder).
  obs::Recorder* recorder = nullptr;
  double sample_period = 1.0;
  /// Optional SLO sink: every finalized repair feeds a "fault/repair_success"
  /// event (good = fully repaired).  The spec is declared on first use if the
  /// caller has not declared it already (objective 0.25: at most a quarter of
  /// repairs may end short of full repair).
  obs::SloTracker* slo = nullptr;
  /// Invoked once, right before the event loop runs, with the simulation's
  /// queue and the resolved fault horizon: background actors (the
  /// rebalancer, notably) attach here so their ticks interleave
  /// deterministically with grants, faults and repairs on the same queue.
  std::function<void(sim::EventQueue&, double)> attach;
};

struct FaultSimResult {
  // Mirrors ClusterSimResult for the churn side...
  std::vector<sim::GrantRecord> grants;
  std::uint64_t rejected = 0;
  std::uint64_t unserved = 0;
  double makespan = 0;
  double total_distance = 0;
  double mean_wait = 0;
  double mean_utilization = 0;
  std::vector<sim::TimelineSample> timeline;
  // ...plus the fault/repair story.
  std::vector<FaultEvent> schedule;     ///< the injected schedule, as run
  std::vector<RepairRecord> repairs;    ///< one terminal record per hit lease
  int node_crashes = 0;
  int rack_outages = 0;
  int node_recoveries = 0;
  int transients = 0;
  int leases_hit = 0;
  int vms_lost = 0;
  int vms_replaced = 0;
  int repaired = 0;   ///< repairs ending kRepaired
  int partial = 0;    ///< ... kPartial
  int degraded = 0;   ///< ... kDegraded
  int abandoned = 0;  ///< ... kAbandoned
  /// Sum over repaired leases of DC(after) - DC(before): how much cluster
  /// distance the failures cost even after affinity-preserving repair.
  double repair_distance_penalty = 0;
};

/// Runs `trace` against `cloud` under `profile`'s failure schedule.  A
/// profile horizon of 0 derives the window from the trace (last arrival +
/// hold).  The cloud is mutated; failed nodes are recovered by their
/// scheduled recovery events (any still down at the end stay down).
FaultSimResult run_fault_sim(cluster::Cloud& cloud,
                             std::unique_ptr<placement::PlacementPolicy> policy,
                             const std::vector<cluster::TimedRequest>& trace,
                             const FaultProfile& profile,
                             const FaultSimOptions& options = {});

}  // namespace vcopt::fault
