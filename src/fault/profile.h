// Fault profiles: a compact, fully deterministic description of the
// failures to inject into a simulated cloud.  A profile plus its seed fixes
// the entire failure schedule (victims, instants, downtimes), so a
// (profile, seed) pair replays bit-identically across runs, machines and
// policies — the property every fault experiment and soak test leans on.
//
// Profiles are written as comma-separated `key=value` specs, optionally
// starting from a named preset, e.g.
//   "none" | "light" | "heavy"
//   "crashes=3,racks=1,seed=7"
//   "heavy,seed=9,horizon=250"
#pragma once

#include <cstdint>
#include <string>

namespace vcopt::fault {

struct FaultProfile {
  std::uint64_t seed = 1;      ///< drives every random draw of the schedule
  double horizon = 0;          ///< fault instants drawn in [0, horizon);
                               ///< 0 = derive from the workload (sim drivers)
  int node_crashes = 0;        ///< whole-node crash/recover cycles
  int rack_outages = 0;        ///< rack-switch outages (every node in the rack)
  int transients = 0;          ///< transient degradations (capacity masked)
  double mean_downtime = 20;   ///< exponential mean time-to-recovery (s)
  double transient_duration = 5;  ///< fixed length of a degradation (s)
  double degrade_factor = 0.5; ///< compute-speed multiplier while degraded
                               ///< (used by the MapReduce fault scenarios)

  int total_events() const {
    return node_crashes + rack_outages + transients;
  }

  /// Throws std::invalid_argument naming the offending field when a value is
  /// out of range (negative counts, non-positive durations with events
  /// scheduled, degrade factor outside (0, 1], ...).
  void validate() const;

  /// Parses a spec string (see file header).  Unknown keys, malformed
  /// numbers and out-of-range values throw std::invalid_argument naming the
  /// offending token.
  static FaultProfile parse(const std::string& spec);

  /// Round-trippable summary, e.g. "crashes=3 racks=1 transients=0 seed=7
  /// horizon=100 mttr=20".
  std::string describe() const;
};

}  // namespace vcopt::fault
