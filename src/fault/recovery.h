// RecoveryManager: self-healing for leased virtual clusters.  When a node
// (or a whole rack) crashes, the VMs it hosted are lost; the manager shrinks
// the affected leases, then re-places the lost VMs with an
// affinity-preserving variant of the paper's Algorithm 1: the candidate
// central scan is restricted to the nodes nearest the cluster's ORIGINAL
// central node, so replacements land close to the surviving VMs and the
// repaired cluster distance DC(C) stays near its pre-failure value.  When
// the restricted window cannot complete the repair, the scan widens to the
// full node set; when even that fails, attempts retry under exponential
// backoff with deterministic jitter, and after the attempt budget the
// manager degrades explicitly (best-effort partial refill -> kPartial,
// survivors only -> kDegraded, nothing left -> kAbandoned + release).
//
// Every failure therefore ends in an explicit terminal PlacementStatus —
// never an exception out of the event loop, never a silently shrunk lease.
//
// Determinism: retries draw jitter from a per-lease Rng forked off the
// manager seed, repair candidate order is a pure function of the topology
// and the original central node, and event ordering rides the EventQueue's
// FIFO-among-ties guarantee — so a (fault profile, seed) pair replays the
// identical repair transcript.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cloud.h"
#include "placement/provisioner.h"
#include "sim/event_queue.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace vcopt::fault {

/// Tuning for the repair loop.
struct RepairPolicy {
  int max_attempts = 5;            ///< placement attempts before degrading
  double backoff_initial = 1.0;    ///< seconds before the first retry
  double backoff_factor = 2.0;     ///< delay multiplier per attempt
  double backoff_jitter = 0.25;    ///< +- fraction applied to each delay
  /// Hard ceiling on any single retry delay, applied after jitter.  The
  /// geometric growth is computed overflow-safely against this clamp, so
  /// even absurd attempt counts (or factors) schedule a finite retry
  /// instead of an infinite-delay event that would wedge the queue.
  double backoff_max = 60.0;
  bool affinity_preserving = true; ///< anchor the scan at the original central
  std::size_t restricted_candidates = 8;  ///< window size of the anchored scan
  bool allow_partial = true;       ///< false: exhausted retries skip kPartial
};

/// Retry delay for `attempt` (1-based) under `policy`:
/// min(backoff_max, initial * factor^(attempt-1)) * (1 + jitter * (2u - 1)),
/// clamped to [0, backoff_max].  `u` is the jitter draw in [0, 1) (the
/// manager feeds the per-lease Rng stream).  Exposed so the overflow/clamp
/// behaviour is directly testable at attempt counts no sim would reach.
double backoff_delay(const RepairPolicy& policy, int attempt, double u);

/// The full story of one lease's encounter with a failure, finalized with a
/// terminal status.  `vms_replaced < vms_lost` iff the repair degraded.
struct RepairRecord {
  cluster::LeaseId lease = 0;
  std::uint64_t request_id = 0;
  placement::PlacementStatus status = placement::PlacementStatus::kAbandoned;
  int attempts = 0;
  double failed_at = 0;     ///< sim time of the (first) capacity loss
  double completed_at = 0;  ///< sim time the terminal status was reached
  int vms_lost = 0;
  int vms_replaced = 0;
  double distance_before = 0;  ///< DC(C) of the lease before the failure
  double distance_after = 0;   ///< DC(C) after repair (0 when abandoned)
  bool restricted_scan_used = false;  ///< repair found within the window
};

class RecoveryManager {
 public:
  RecoveryManager(cluster::Cloud& cloud, sim::EventQueue& queue,
                  RepairPolicy policy = {}, std::uint64_t seed = 1);

  /// Registers a live grant so its original central node and distance are
  /// known when a failure hits it.  Untracked leases hit by a failure are
  /// still shrunk and repaired, with the anchor recomputed from survivors.
  void track(const placement::Grant& grant);

  /// Forgets a lease (normal release).  A repair still pending for it is
  /// finalized as kAbandoned without touching the (gone) lease.
  void untrack(cluster::LeaseId lease);

  /// Crash handling: revokes the node's capacity, shrinks every lease that
  /// hosted VMs there, and schedules an immediate repair attempt per lease.
  /// Idempotent for an already-failed node.
  void on_node_failed(std::size_t node);
  void on_node_recovered(std::size_t node);

  /// Called instead of cloud.release() when a repair abandons an emptied
  /// lease — lets the driver route the release through its Provisioner so
  /// the wait queue drains.  Default: cloud.release(lease).
  void set_release_hook(std::function<void(cluster::LeaseId)> hook) {
    release_hook_ = std::move(hook);
  }

  /// Called with each RepairRecord the moment it is finalized (after the
  /// lease mutation, before any abandoned-lease release).  Lets a simulation
  /// driver resample utilisation/timeline at repair instants.
  void set_repair_hook(std::function<void(const RepairRecord&)> hook) {
    repair_hook_ = std::move(hook);
  }

  const RepairPolicy& policy() const { return policy_; }
  const std::vector<RepairRecord>& records() const { return records_; }
  std::size_t pending_count() const { return pending_.size(); }
  std::string describe() const;

 private:
  struct Tracked {
    std::uint64_t request_id = 0;
    std::size_t central = 0;
    int priority = 0;
    double distance = 0;
  };
  struct Pending {
    cluster::LeaseId lease = 0;
    std::uint64_t request_id = 0;
    std::vector<int> missing;        ///< per-type counts still to re-place
    int attempts = 0;
    double failed_at = 0;
    std::size_t anchor = 0;          ///< original central node (scan anchor)
    double distance_before = 0;
    util::IntMatrix original;        ///< lease allocation before the failure
    util::IntMatrix lost;            ///< accumulated lost slice
    std::vector<bool> failed_nodes;  ///< nodes that lost VMs of this lease
    util::Rng rng{1};                ///< per-lease jitter stream
  };

  void attempt_repair(cluster::LeaseId lease);
  void finalize(Pending& p, placement::PlacementStatus status,
                int vms_replaced, double distance_after, bool restricted);
  /// Affinity-preserving Algorithm-1 scan for the missing VMs; fills
  /// `restricted` with whether the anchored window sufficed.
  std::optional<cluster::Allocation> place_missing(const Pending& p,
                                                   bool& restricted) const;
  /// Remaining capacity with the lease's own failure-tainted rows zeroed:
  /// replacements never return to a node that already lost VMs of this
  /// lease, even if it has since recovered.
  util::IntMatrix repair_remaining(const Pending& p) const;

  cluster::Cloud& cloud_;
  sim::EventQueue& queue_;
  RepairPolicy policy_;
  util::Rng rng_;
  std::function<void(cluster::LeaseId)> release_hook_;
  std::function<void(const RepairRecord&)> repair_hook_;
  std::map<cluster::LeaseId, Tracked> tracked_;
  std::map<cluster::LeaseId, Pending> pending_;
  std::vector<RepairRecord> records_;
};

}  // namespace vcopt::fault
