// FaultInjector: expands a FaultProfile into a deterministic, time-sorted
// schedule of fault events over a concrete topology, and arms them on a
// sim::EventQueue.  The injector only *produces* events — interpreting them
// (revoking capacity, shrinking leases, relocating tasks) belongs to the
// sink, so the same schedule can drive the queueing simulator, the
// MapReduce engine, or a unit test's hand-rolled harness.
//
// Determinism: the schedule is a pure function of (profile, topology
// shape).  Events carry a monotonically increasing `sequence`; ties in time
// are ordered by sequence, and arming preserves that order through the
// event queue's FIFO-among-ties guarantee, so a given (profile, seed)
// replays the identical failure schedule on every run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "fault/profile.h"
#include "sim/event_queue.h"

namespace vcopt::fault {

enum class FaultKind {
  kNodeCrash,    ///< subject = node: capacity revoked, hosted VMs lost
  kNodeRecover,  ///< subject = node: capacity restored
  kRackOutage,   ///< subject = rack: every node in the rack crashes
  kRackRecover,  ///< subject = rack: every node in the rack recovers
  kDegrade,      ///< subject = node: transient degradation begins
  kRestore,      ///< subject = node: transient degradation ends
};

const char* to_string(FaultKind k);

struct FaultEvent {
  double time = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  std::size_t subject = 0;     ///< node id, or rack id for rack events
  std::uint64_t sequence = 0;  ///< creation order; tie-breaker for equal times

  bool operator==(const FaultEvent& o) const {
    return time == o.time && kind == o.kind && subject == o.subject &&
           sequence == o.sequence;
  }
};

/// The deterministic schedule for (profile, topology): crash/outage/degrade
/// instants uniform in [0, horizon), victims uniform over nodes/racks,
/// downtimes exponential with mean profile.mean_downtime.  Sorted by
/// (time, sequence).  profile.validate() must pass and profile.horizon must
/// be > 0 when the profile has events.
std::vector<FaultEvent> build_schedule(const FaultProfile& profile,
                                       const cluster::Topology& topology);

class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, const cluster::Topology& topology);

  const FaultProfile& profile() const { return profile_; }
  const std::vector<FaultEvent>& schedule() const { return schedule_; }

  /// Arms every scheduled event on `queue`; `sink` is invoked at simulated
  /// event time, in schedule order for simultaneous events.
  void arm(sim::EventQueue& queue,
           std::function<void(const FaultEvent&)> sink) const;

  std::string describe() const;

 private:
  FaultProfile profile_;
  std::vector<FaultEvent> schedule_;
};

}  // namespace vcopt::fault
